"""Perf-regression gate: diff a fresh benchmark report against the
committed baseline.

``python -m repro.driver.perfgate BASELINE FRESH [--max-regress 0.20]``

Fails (exit 1) when the fresh run regresses more than the threshold on
either gated total:

* ``states_explored`` — the search kernel's macro-state count.  This is
  deterministic per (corpus, schema) and the primary guard: a pruning
  or compression bug shows up here immediately.
* ``wall_ms`` — total wall time.  Noisy on shared CI runners, so the
  threshold is interpreted against the baseline with the same generous
  margin; states are the signal, wall is the tripwire for gross
  slowdowns (an accidentally quadratic fingerprint, a cache that stopped
  hitting).
* ``solver_fresh_solves`` — from-scratch solver context builds (schema
  v5).  The incremental-reuse ratchet: path contexts answering queries
  on warm scopes keep this number low, and a regression here means the
  contexts stopped being reused (thrashing trails, over-eager rebuilds,
  or a proof system that silently fell back to one-shot solving).
* ``max_wall_ms`` — the slowest single program row (schema v7).  The
  sharded in-program search exists to shrink the corpus's worst-case
  row, so the gate watches it alongside the sum: speeding up the
  average while regressing the tail fails.  As a timing it shares the
  wall-clock budget (``--max-regress-wall`` when given).

One total is gated in the *other* direction, with no tolerance:

* ``validated_counterexamples`` — counterexample rows whose synthesized
  client / instantiated program re-ran concretely to the same blame.
  Any drop against the baseline means a synthesis or validation
  regression (a finding went back to "skipped" or stopped reproducing)
  and fails the build outright.

``--max-regress-wall`` sets a separate (typically looser) threshold
for the wall-clock total — warm-store runs gate wall time against a
committed warm baseline, where scheduler noise dominates the tiny
absolute times.

*Known older* schemas are tolerated: only the gated totals are read,
and a baseline written by an older ``repro-bench/vN`` schema still
gates a newer fresh report (missing totals are skipped, not failed).
An *unknown* schema — garbage, a different tool's report, or a version
newer than this checkout understands — fails fast with exit 2 and a
clear message instead of gating against meaningless numbers.
Improvements are reported but never fail the gate — commit the fresh
report as the new baseline to ratchet.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

from .report import SCHEMA

#: The newest report version this gate understands.
_CURRENT_VERSION = int(SCHEMA.rsplit("/v", 1)[1])
_SCHEMA_RE = re.compile(r"^repro-bench/v(\d+)$")

#: (key, pretty name) of the gated totals (regressions grow the value).
GATED = (
    ("states_explored", "states explored"),
    ("wall_ms", "wall time (ms)"),
    ("solver_fresh_solves", "from-scratch solver solves"),
    # Schema v7: the slowest single program row.  In-program frontier
    # sharding exists to shrink exactly this number, so it is gated
    # alongside the sum — a change that speeds the corpus up on average
    # while making the worst program slower still fails.  Shares the
    # wall-clock budget (``--max-regress-wall``): it is a timing, and on
    # shared CI runners single-row noise is even larger than total-noise.
    ("max_wall_ms", "slowest program wall (ms)"),
    # Schema v8: executed micro-steps in the bytecode dispatch loop.
    # Deterministic per (corpus, configuration), like states_explored: a
    # regression means chains got shorter (less work fused per macro
    # state) or the executor started delegating transitions it used to
    # run inline.  Pre-v8 baselines and interpreted runs carry no (or a
    # zero) value, which the missing/zero guard below SKIPs cleanly.
    ("dispatch_steps", "dispatch steps"),
)

#: (key, pretty name) of ratchet totals: any decrease fails the gate.
GATED_MIN = (
    ("validated_counterexamples", "validated counterexamples"),
)


def _check_schema(path: str, report: dict) -> None:
    schema = report.get("schema")
    m = _SCHEMA_RE.match(schema) if isinstance(schema, str) else None
    if m is None:
        raise ValueError(
            f"{path}: unrecognized report schema {schema!r} — expected "
            f"repro-bench/v1..v{_CURRENT_VERSION}; is this really a "
            "repro bench report?"
        )
    if int(m.group(1)) > _CURRENT_VERSION:
        raise ValueError(
            f"{path}: report schema {schema!r} is newer than this "
            f"checkout understands ({SCHEMA}) — update the code or "
            "regenerate the report"
        )


def load_totals(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    if not isinstance(report, dict):
        raise ValueError(f"{path}: not a report object")
    _check_schema(path, report)
    totals = report.get("totals")
    if not isinstance(totals, dict):
        raise ValueError(f"{path}: no totals section (schema {report.get('schema')!r})")
    return totals


def _numeric(x) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def compare(
    baseline: dict, fresh: dict, max_regress: float,
    *, max_regress_wall: float | None = None,
) -> list[str]:
    """Human-readable comparison lines; lines starting with FAIL gate."""
    lines = []
    for key, pretty in GATED:
        old = baseline.get(key)
        new = fresh.get(key)
        if not _numeric(old) or not old:  # missing/zero/garbage baseline
            lines.append(f"SKIP {pretty}: no usable baseline value ({old!r})")
            continue
        if new is None:  # fresh report from another schema: same tolerance
            lines.append(f"SKIP {pretty}: missing from the fresh report")
            continue
        if not _numeric(new):
            lines.append(
                f"FAIL {pretty}: non-numeric fresh value ({new!r})"
            )
            continue
        budget = (
            max_regress_wall
            if key in ("wall_ms", "max_wall_ms") and max_regress_wall is not None
            else max_regress
        )
        ratio = (new - old) / old
        word = "regression" if ratio > 0 else "improvement"
        line = f"{pretty}: {old:g} -> {new:g} ({ratio:+.1%} {word})"
        if ratio > budget:
            lines.append(f"FAIL {line} exceeds the {budget:.0%} budget")
        else:
            lines.append(f"ok   {line}")
    for key, pretty in GATED_MIN:
        old = baseline.get(key)
        new = fresh.get(key)
        if old is None:  # pre-v4 baseline: nothing to ratchet against
            lines.append(f"SKIP {pretty}: not in the baseline report")
            continue
        if new is None:
            lines.append(f"SKIP {pretty}: missing from the fresh report")
            continue
        if not _numeric(old) or not _numeric(new):
            lines.append(
                f"FAIL {pretty}: non-numeric value "
                f"(baseline {old!r}, fresh {new!r})"
            )
            continue
        line = f"{pretty}: {old:g} -> {new:g}"
        if new < old:
            lines.append(f"FAIL {line} dropped below the baseline")
        else:
            lines.append(f"ok   {line}")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.driver.perfgate",
        description="Fail on benchmark perf regressions vs a baseline report",
    )
    parser.add_argument("baseline", help="committed BENCH_driver.json")
    parser.add_argument("fresh", help="freshly generated report")
    parser.add_argument(
        "--max-regress", type=float, default=0.20, metavar="FRACTION",
        help="allowed relative regression per gated total (default 0.20)",
    )
    parser.add_argument(
        "--max-regress-wall", type=float, default=None, metavar="FRACTION",
        help="separate threshold for the wall-clock total (default: the "
        "--max-regress value); warm-store gates use a looser wall budget "
        "because their absolute times are scheduler-noise-sized",
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_totals(args.baseline)
        fresh = load_totals(args.fresh)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"perfgate: {exc}", file=sys.stderr)
        return 2
    lines = compare(baseline, fresh, args.max_regress,
                    max_regress_wall=args.max_regress_wall)
    for line in lines:
        print(line)
    return 1 if any(line.startswith("FAIL") for line in lines) else 0


if __name__ == "__main__":
    raise SystemExit(main())

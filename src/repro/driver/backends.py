"""Backend dispatch: one verification question, two symbolic engines.

A :class:`Backend` turns surface source text into a
:class:`~repro.driver.report.ProgramResult`.  Two are registered:

* ``core`` — the typed §3 pipeline: ``driver.lower`` type-infers the
  contract-free subset into SPCF, ``core.search`` explores it, and
  counterexamples are double-validated (``core.concrete`` Theorem-1
  re-run + independent ``conc.interp`` surface re-run);
* ``scv`` — the untyped §4 pipeline: ``scv.engine`` assembles the
  program (modules, contracts, demonic client) for the untyped machine,
  ``scv.delta``/``scv.proof`` drive its branching, and
  ``scv.counterexample`` models blame states.  Module findings are
  re-run through the demonic client ``repro.synth`` reconstructs from
  the blame heap, so they validate concretely like everything else.

Counterexample rows from either backend carry the closed, runnable
surface program (``CexReport.client``) that reproduces the blame —
printed by ``repro verify --emit-cex-client``.

Both backends enforce the same wall-clock deadline and report the same
result schema, which is what makes ``--backend both`` cross-checking
(``report.BenchReport.agreement``) meaningful.  On the contract-free
shared corpus the scv machine runs under ``assume_well_typed`` so both
engines answer the identical question (see ``scv.machine``).
"""

from __future__ import annotations

import os
import signal
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional, Protocol

from ..conc.interp import Interp, InterpTimeout, PrimBlame, RuntimeFault
from ..core import (
    Machine,
    ProofSystem,
    SearchStats,
    TypeError_,
    check_program,
    construct,
    find_errors,
)
from ..core.counterexample import canonical_op
from ..core.counterexample import render_bindings as render_core_bindings
from ..core.heap import reset_locs
from ..core.syntax import reset_labels as reset_core_labels
from ..lang.ast import Program
from ..lang.ast import reset_labels as reset_surface_labels
from ..lang.parser import ParseError, parse_program
from ..lang.sexp import ReadError
from ..smt import SOLVE_STATS, solver_cache
from ..scv import (
    SMachine,
    UProofSystem,
    USearchStats,
    collect_struct_types,
    construct_u,
    find_known_blames,
    inject_program,
    uses_contracts,
    uses_extended_prims,
)
from ..scv.counterexample import canonical_blame_op
from ..scv.counterexample import render_bindings as render_scv_bindings
from ..scv.machine import reset_syn_labels
from ..synth import closed_program_text
from .lower import LowerError, lower_program, raise_expr
from .report import (
    STATUS_COUNTEREXAMPLE,
    STATUS_ERROR,
    STATUS_NO_MODEL,
    STATUS_SAFE,
    STATUS_TIMEOUT,
    STATUS_TRUNCATED,
    STATUS_UNSUPPORTED,
    CexReport,
    ProgramResult,
)


@dataclass(frozen=True)
class RunConfig:
    """Budgets and knobs shared by every program in a batch."""

    max_states: int = 50_000  # symbolic search budget
    fuel: int = 200_000  # concrete validation step budget
    timeout_s: float = 30.0  # per-program wall clock
    max_cex_attempts: int = 20  # error states to try to model before giving up
    mode: str = "implications"  # heap translation mode (paper Fig. 4)
    jobs: int = 1  # worker processes
    strategy: str = "bfs"  # search kernel frontier discipline
    memo: bool = True  # fingerprint memoisation + solver-query cache
    incremental: bool = True  # per-path incremental solver contexts
    store_dir: Optional[str] = None  # persistent store root (None: no store)
    client_of: Optional[str] = None  # narrow the demonic client (repro.store)
    shards: int = 1  # in-program frontier shards (repro.search.parallel)
    # Bytecode compilation (repro.compile).  ``compile`` swaps the
    # step-at-a-time machines for the fused dispatch-loop executors —
    # byte-identical results (the differential oracle pins this), so it
    # is *not* part of the semantic config digest and compiled/
    # interpreted runs share store entries.  ``compile_cache_dir``
    # overrides where compiled units persist; by default they live under
    # ``<store_dir>/compiled`` when a store is configured, else nowhere.
    compile: bool = True
    compile_cache_dir: Optional[str] = None


def _compile_cache(cfg: RunConfig, program: Program):
    """The compiled-unit cache for this run, or None (no cache dir, or
    the program has no stable digest)."""
    cache_dir = cfg.compile_cache_dir or (
        os.path.join(cfg.store_dir, "compiled") if cfg.store_dir else None
    )
    if not cache_dir:
        return None
    from ..compile import CompiledUnitCache
    from ..store.fingerprint import DigestError, program_digest

    try:
        digest = program_digest(program)
    except DigestError:
        return None
    return CompiledUnitCache(cache_dir, digest, cfg.client_of)


class _Deadline(Exception):
    """Raised inside a worker when the per-program wall clock expires."""


class DeadlineStatus:
    """Whether a configured wall-clock budget was actually armed.

    ``enforced`` stays True when no budget was requested (nothing to
    enforce) and flips to False only when a *positive* budget could not
    be installed — no ``SIGALRM`` on this platform, or the caller is not
    the main thread.  The row's ``deadline_enforced`` field reports it,
    so an unenforced budget is visible instead of silently dropped."""

    __slots__ = ("enforced",)

    def __init__(self) -> None:
        self.enforced = True


#: One warning per process: every row still carries the flag, but the
#: stderr noise is emitted only for the first unenforceable deadline.
_deadline_warned = False


def _warn_deadline_unenforced(reason: str) -> None:
    global _deadline_warned
    if _deadline_warned:
        return
    _deadline_warned = True
    warnings.warn(
        f"wall-clock deadline not enforced ({reason}); verification "
        "runs unbounded and result rows carry deadline_enforced=false",
        RuntimeWarning,
        stacklevel=3,
    )


@contextmanager
def _deadline(seconds: float, status: Optional[DeadlineStatus] = None):
    """Arm a wall-clock alarm around a block (POSIX main thread only).

    Where the alarm cannot be installed the block runs unbounded, but
    never silently: ``status.enforced`` is cleared and a one-time
    warning names the reason, so a threaded caller (e.g. an HTTP
    handler thread) cannot mistake an unbounded run for a budgeted
    one."""
    status = status if status is not None else DeadlineStatus()
    if seconds <= 0:  # explicitly unbounded: nothing to enforce
        yield status
        return
    if not hasattr(signal, "SIGALRM"):
        status.enforced = False
        _warn_deadline_unenforced("SIGALRM unavailable on this platform")
        yield status
        return

    def _on_alarm(signum, frame):
        raise _Deadline()

    try:
        old = signal.signal(signal.SIGALRM, _on_alarm)
    except ValueError:  # not in the main thread
        status.enforced = False
        _warn_deadline_unenforced(
            "SIGALRM can only be installed from the main thread"
        )
        yield status
        return
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield status
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, old)


def _reset_counters() -> None:
    # Labels and heap locations are only unique per program; restarting
    # the counters per verification makes reports (and solver model
    # choices) reproducible regardless of worker assignment.  The solver
    # cache is cleared for the same reason: results are pure either way,
    # but the per-row `solver_cache_hits` counter must not depend on
    # which programs happened to share a worker process.  `clear()`
    # resets the hit/miss counters together with the table, so a reused
    # pool worker cannot bleed one row's hits into the next row's stats
    # whatever order snapshots are taken in.
    reset_surface_labels()
    reset_core_labels()
    reset_syn_labels()
    reset_locs()
    solver_cache.clear()


class Backend(Protocol):
    """A verification engine, selectable via ``--backend``."""

    name: str

    def verify(
        self,
        source: str,
        *,
        name: str = "<input>",
        kind: str = "?",
        config: Optional[RunConfig] = None,
    ) -> ProgramResult:
        ...


class _ResultBuilder:
    """Shared bookkeeping: wall clock, counters, result assembly.

    Construction also applies the run's memoisation setting to the
    process-wide solver cache and snapshots its hit counter, so every
    result row carries the cache hits *this* verification scored
    (verifications never interleave within a worker process).  ``done``
    — the single exit point of every verification — restores the
    previous cache setting, so a ``memo=False`` run does not leave the
    process cache disabled for unrelated callers."""

    def __init__(self, backend: str, name: str, kind: str,
                 memo: bool = True) -> None:
        self.backend = backend
        self.name = name
        self.kind = kind
        self._prev_cache_enabled = solver_cache.enabled
        solver_cache.enabled = memo
        self._cache_snap = solver_cache.snapshot()
        self._solve_snap = SOLVE_STATS.begin_window()
        self.t0 = time.perf_counter()

    def done(self, status: str, *, states: int, proof_queries: int,
             solver_queries: int, pruned: int = 0, chained: int = 0,
             **kw) -> ProgramResult:
        hits = solver_cache.hits_since(self._cache_snap)
        solver_cache.enabled = self._prev_cache_enabled
        return ProgramResult(
            name=self.name,
            kind=self.kind,
            status=status,
            wall_ms=(time.perf_counter() - self.t0) * 1000,
            backend=self.backend,
            states_explored=states,
            proof_queries=proof_queries,
            solver_queries=solver_queries,
            pruned_states=pruned,
            solver_cache_hits=hits,
            chained_steps=chained,
            **SOLVE_STATS.window(self._solve_snap),
            **kw,
        )


class TypedCoreBackend:
    """The typed §3 SPCF pipeline (the seed driver's only path)."""

    name = "core"

    def verify(
        self,
        source: str,
        *,
        name: str = "<input>",
        kind: str = "?",
        config: Optional[RunConfig] = None,
    ) -> ProgramResult:
        cfg = config or RunConfig()
        _reset_counters()
        stats = SearchStats()
        proof = ProofSystem(mode=cfg.mode, incremental=cfg.incremental)
        rb = _ResultBuilder(self.name, name, kind, memo=cfg.memo)
        dl = DeadlineStatus()

        def done(status: str, **kw) -> ProgramResult:
            # Reads every counter at call time, so rows cut short by the
            # SIGALRM deadline still report the partial work observed.
            return rb.done(
                status,
                states=stats.states_explored,
                proof_queries=proof.queries,
                solver_queries=proof.solver_queries,
                pruned=stats.pruned,
                chained=stats.chained,
                shards=stats.shards,
                stolen_tasks=stats.stolen_tasks,
                frontier_exchanges=stats.frontier_exchanges,
                shard_states=list(stats.shard_states),
                deadline_enforced=dl.enforced,
                compiled_units=stats.compiled_units,
                compile_ms=stats.compile_ms,
                dispatch_steps=stats.dispatch_steps,
                **kw,
            )

        try:
            program = parse_program(source)
            core = lower_program(program)
            check_program(core)
        except (ParseError, ReadError, LowerError, TypeError_) as exc:
            return done(STATUS_UNSUPPORTED, detail=f"{type(exc).__name__}: {exc}")

        compile_cache = _compile_cache(cfg, program) if cfg.compile else None
        errors_found = 0
        attempts = 0
        found = None  # the first validated counterexample, if any
        try:
            with _deadline(cfg.timeout_s, dl):
                machine = Machine(proof)
                for result in find_errors(
                    core, machine=machine, max_states=cfg.max_states,
                    stats=stats, strategy=cfg.strategy, memo=cfg.memo,
                    shards=cfg.shards, compiled=cfg.compile,
                    compile_cache=compile_cache,
                ):
                    errors_found += 1
                    if attempts >= cfg.max_cex_attempts:
                        break  # enough unmodelable errors: give up
                    attempts += 1
                    cex = construct(
                        core,
                        result.state,
                        mode=cfg.mode,
                        validate=True,
                        fuel=cfg.fuel,
                    )
                    if cex is None or not cex.validated:
                        continue
                    found = cex
                    break
        except _Deadline:
            # The alarm can fire in the window between `found = cex` and
            # the deadline context cancelling the timer; a validated
            # counterexample in hand still gets its report assembled.
            if found is None:
                return done(
                    STATUS_TIMEOUT,
                    errors_found=errors_found,
                    cex_attempts=attempts,
                    detail=f"wall clock exceeded {cfg.timeout_s:g}s",
                )
        except Exception as exc:  # driver bug or engine stuck-state
            return done(
                STATUS_ERROR,
                errors_found=errors_found,
                detail=f"{type(exc).__name__}: {exc}",
            )

        if found is not None:
            # Success path: the deadline context has exited — the alarm
            # is cancelled and the previous SIGALRM handler restored — so
            # report assembly (surface re-validation, client synthesis,
            # serialization) cannot be killed by a stale alarm.
            cex = found
            try:
                surface_bindings = {
                    label: raise_expr(v) for label, v in cex.bindings.items()
                }
                conc_ok = _surface_revalidate(
                    program, surface_bindings, cex.err.label, cfg.fuel
                )
                return done(
                    STATUS_COUNTEREXAMPLE,
                    errors_found=errors_found,
                    cex_attempts=attempts,
                    counterexample=CexReport(
                        bindings=render_core_bindings(cex),
                        err_label=cex.err.label,
                        err_op=canonical_op(cex.err.op),
                        validated_core=bool(cex.validated),
                        validated_conc=conc_ok,
                        err_detail=cex.err.op,
                        client=closed_program_text(
                            program, surface_bindings
                        ),
                    ),
                )
            except Exception as exc:  # assembly bug: still a driver error
                return done(
                    STATUS_ERROR,
                    errors_found=errors_found,
                    cex_attempts=attempts,
                    detail=f"{type(exc).__name__}: {exc}",
                )

        if errors_found:
            return done(
                STATUS_NO_MODEL, errors_found=errors_found, cex_attempts=attempts,
                detail="error states found but none had a validated model",
            )
        if stats.truncated:
            return done(
                STATUS_TRUNCATED,
                detail=f"state budget {cfg.max_states} exhausted without an answer",
            )
        return done(STATUS_SAFE)


def _surface_revalidate(
    program: Program, opaque_exprs: dict, err_label: str, fuel: int
) -> bool:
    """Independent oracle for the core backend: instantiate the
    *surface* program with the counterexample and confirm the surface
    interpreter blames the same source label."""
    interp = Interp(fuel=fuel)
    try:
        interp.run_program(program, opaque_exprs=opaque_exprs)
    except PrimBlame as blame:
        return blame.label == err_label
    except (RuntimeFault, InterpTimeout):
        return False
    return False


class UntypedScvBackend:
    """The untyped §4 pipeline — contracts, modules, blame and all."""

    name = "scv"

    def verify(
        self,
        source: str,
        *,
        name: str = "<input>",
        kind: str = "?",
        config: Optional[RunConfig] = None,
    ) -> ProgramResult:
        cfg = config or RunConfig()
        _reset_counters()
        stats = USearchStats()
        rb = _ResultBuilder(self.name, name, kind, memo=cfg.memo)
        dl = DeadlineStatus()
        proof_queries = solver_queries = 0

        def done(status: str, **kw) -> ProgramResult:
            # As in the core backend: counters are read at call time so
            # deadline-interrupted rows keep their partial stats.
            return rb.done(
                status,
                states=stats.states_explored,
                proof_queries=proof_queries,
                solver_queries=solver_queries,
                pruned=stats.pruned,
                chained=stats.chained,
                shards=stats.shards,
                stolen_tasks=stats.stolen_tasks,
                frontier_exchanges=stats.frontier_exchanges,
                shard_states=list(stats.shard_states),
                deadline_enforced=dl.enforced,
                compiled_units=stats.compiled_units,
                compile_ms=stats.compile_ms,
                dispatch_steps=stats.dispatch_steps,
                **kw,
            )

        try:
            program = parse_program(source)
        except (ParseError, ReadError) as exc:
            return done(STATUS_UNSUPPORTED, detail=f"{type(exc).__name__}: {exc}")

        compile_cache = _compile_cache(cfg, program) if cfg.compile else None
        machine = SMachine(
            struct_types=collect_struct_types(program),
            assume_well_typed=not uses_contracts(program),
            extended_prims=uses_extended_prims(program),
            proof=UProofSystem(incremental=cfg.incremental),
        )
        errors_found = 0
        attempts = 0
        found = None  # the first validated counterexample, if any
        try:
            with _deadline(cfg.timeout_s, dl):
                init = inject_program(program, machine,
                                      client_of=cfg.client_of)
                for blame_state in find_known_blames(
                    init, machine, max_states=cfg.max_states, stats=stats,
                    strategy=cfg.strategy, memo=cfg.memo, shards=cfg.shards,
                    compiled=cfg.compile, compile_cache=compile_cache,
                ):
                    errors_found += 1
                    if attempts >= cfg.max_cex_attempts:
                        break
                    attempts += 1
                    cex = construct_u(
                        program, blame_state, validate=True, fuel=cfg.fuel,
                        client_of=cfg.client_of,
                    )
                    if cex is None or cex.validated is False:
                        continue
                    found = cex
                    break
        except _Deadline:
            # As in the core backend: a counterexample validated just
            # under the wire is reported, not discarded as a timeout.
            if found is None:
                proof_queries = machine.proof.queries
                solver_queries = machine.proof.solver_queries
                return done(
                    STATUS_TIMEOUT,
                    errors_found=errors_found,
                    cex_attempts=attempts,
                    detail=f"wall clock exceeded {cfg.timeout_s:g}s",
                )
        except Exception as exc:  # driver bug or engine stuck-state
            proof_queries = machine.proof.queries
            solver_queries = machine.proof.solver_queries
            return done(
                STATUS_ERROR,
                errors_found=errors_found,
                detail=f"{type(exc).__name__}: {exc}",
            )

        proof_queries = machine.proof.queries
        solver_queries = machine.proof.solver_queries
        if found is not None:
            # Alarm cancelled, previous handler restored (see the core
            # backend): assembly runs outside the wall-clock budget.
            cex = found
            blame = cex.blame
            try:
                return done(
                    STATUS_COUNTEREXAMPLE,
                    errors_found=errors_found,
                    cex_attempts=attempts,
                    counterexample=CexReport(
                        bindings=render_scv_bindings(cex),
                        err_label=blame.label,
                        err_op=canonical_blame_op(blame),
                        validated_core=None,  # scv has one oracle
                        validated_conc=cex.validated,
                        err_detail=f"{blame.party}: {blame.description}",
                        client=cex.closed_program(program),
                    ),
                )
            except Exception as exc:  # assembly bug: still a driver error
                return done(
                    STATUS_ERROR,
                    errors_found=errors_found,
                    cex_attempts=attempts,
                    detail=f"{type(exc).__name__}: {exc}",
                )
        if errors_found:
            return done(
                STATUS_NO_MODEL, errors_found=errors_found, cex_attempts=attempts,
                detail="blame states found but none had a validated model",
            )
        if stats.truncated:
            return done(
                STATUS_TRUNCATED,
                detail=f"state budget {cfg.max_states} exhausted without an answer",
            )
        return done(STATUS_SAFE)


BACKENDS: dict[str, Backend] = {
    "core": TypedCoreBackend(),
    "scv": UntypedScvBackend(),
}

#: Accepted values for the CLI ``--backend`` flag.
BACKEND_CHOICES = (*BACKENDS, "both")


def get_backend(name: str) -> Backend:
    try:
        return BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r} (have: {', '.join(BACKENDS)})"
        ) from None

"""The seeded benchmark corpus.

Thirty-two small higher-order programs in the surface syntax, arranged as
safe/buggy pairs in the style of the paper's §5 evaluation: each buggy
variant seeds exactly the kind of fault the tool exists to find (a
reachable partial-primitive application), and each safe variant guards
it so that every symbolic path is provably error-free.

Corpus discipline (see ``driver.lower``):

* programs stay inside the SPCF-expressible subset — numbers, first-class
  functions, ``if``/``let``/``cond``/``and``-style sugar, bounded
  recursion, and ``•`` unknowns;
* safe programs terminate symbolically (recursion only on concrete
  bounds) and their safety arguments are linear, so the bundled solver
  can discharge them;
* ``if`` tests always hold comparison/predicate results, keeping PCF
  truthiness (non-zero) and Racket truthiness (non-``#f``) in agreement;
* division sites are either the seeded fault or have guarded
  denominators, so the core's floor division and Racket's truncating
  ``quotient`` never disagree along executed paths.

Every program is tagged; the ``smoke`` tag marks the fast subset CI runs
on every push.
"""

from __future__ import annotations

from dataclasses import dataclass

SAFE = "safe"
BUGGY = "buggy"

_ABS = "(define (my-abs x) (if (< x 0) (- 0 x) x))\n"


@dataclass(frozen=True)
class CorpusProgram:
    """One benchmark: a source text plus its expected verdict."""

    name: str
    kind: str  # SAFE or BUGGY
    source: str
    description: str
    tags: tuple[str, ...] = ()

    @property
    def is_buggy(self) -> bool:
        return self.kind == BUGGY


def _safe(name, source, description, *tags):
    return CorpusProgram(name, SAFE, source, description, tuple(tags))


def _buggy(name, source, description, *tags):
    return CorpusProgram(name, BUGGY, source, description, tuple(tags))


CORPUS: tuple[CorpusProgram, ...] = (
    # -- first-order division guards ------------------------------------
    _safe(
        "div-checked",
        "(define (checked-div n d) (if (= d 0) 0 (quotient n d)))\n"
        "(checked-div 100 •)",
        "division behind an explicit zero test",
        "smoke", "first-order",
    ),
    _buggy(
        "div-unchecked",
        "(define (risky-div n d) (quotient n d))\n"
        "(risky-div 100 •)",
        "unknown denominator reaches quotient unguarded",
        "smoke", "first-order",
    ),
    _safe(
        "abs-denom",
        _ABS + "(quotient 100 (add1 (my-abs •)))",
        "|x| + 1 is provably nonzero on both abs branches",
        "first-order",
    ),
    _buggy(
        "abs-denom-zero",
        _ABS + "(quotient 100 (my-abs •))",
        "|x| alone can still be zero",
        "first-order",
    ),
    # -- the paper's §2 worked example ----------------------------------
    _buggy(
        "intro-unknown-fn",
        "(define (f g) (quotient 100 (- 100 (g 0))))\n"
        "(f •)",
        "§2 introduction: an unknown function returning 100 at 0",
        "higher-order",
    ),
    _safe(
        "intro-unknown-fn-guarded",
        _ABS
        + "(define (f g) (quotient 100 (add1 (my-abs (g 0)))))\n"
        + "(f •)",
        "§2 example with the denominator made positive",
        "higher-order",
    ),
    # -- function composition -------------------------------------------
    _buggy(
        "compose-hole",
        "(define (compose f g) (lambda (x) (f (g x))))\n"
        "((compose (lambda (y) (quotient 100 y)) (lambda (x) (- x 5))) •)",
        "composed pipeline divides by x - 5",
        "higher-order",
    ),
    _safe(
        "compose-guarded",
        _ABS
        + "(define (compose f g) (lambda (x) (f (g x))))\n"
        + "((compose (lambda (y) (quotient 100 y))"
        " (lambda (x) (add1 (my-abs x)))) •)",
        "composed pipeline with a positive inner stage",
        "higher-order",
    ),
    # -- branch-join arithmetic ------------------------------------------
    _safe(
        "clamp-positive",
        "(define (clamp x lo hi) (if (< x lo) lo (if (< hi x) hi x)))\n"
        "(quotient 100 (clamp • 1 10))",
        "clamping into [1, 10] keeps the denominator nonzero",
        "first-order",
    ),
    _buggy(
        "clamp-zero-low",
        "(define (clamp x lo hi) (if (< x lo) lo (if (< hi x) hi x)))\n"
        "(quotient 100 (clamp • 0 10))",
        "clamping into [0, 10] admits a zero denominator",
        "first-order",
    ),
    # -- bounded recursion over an unknown function ----------------------
    _buggy(
        "sum-unknown-fn",
        "(define (sum-f f n) (if (<= n 0) 0 (+ (f n) (sum-f f (- n 1)))))\n"
        "(quotient 100 (sum-f • 3))",
        "f(3) + f(2) + f(1) can sum to zero",
        "higher-order", "recursion",
    ),
    _safe(
        "sum-unknown-fn-abs",
        _ABS
        + "(define (sum-f f n)"
        " (if (<= n 0) 0 (+ (my-abs (f n)) (sum-f f (- n 1)))))\n"
        + "(quotient 100 (add1 (sum-f • 3)))",
        "a sum of absolute values plus one stays positive",
        "higher-order", "recursion",
    ),
    # -- self-application shapes -----------------------------------------
    _buggy(
        "twice-reaches-ten",
        "(define (twice f x) (f (f x)))\n"
        "(quotient 100 (- 10 (twice • 3)))",
        "memoised unknown: f(f(3)) can equal 10",
        "higher-order",
    ),
    _safe(
        "twice-guarded",
        _ABS
        + "(define (twice f x) (f (f x)))\n"
        + "(quotient 100 (add1 (my-abs (twice • 3))))",
        "f(f(3)) wrapped in abs + 1",
        "higher-order",
    ),
    # -- binder/condition sugar ------------------------------------------
    _safe(
        "letstar-and-window",
        "(let* ([a •] [b (add1 a)])\n"
        "  (if (and (< 0 a) (< a 10)) (quotient 100 b) 0))",
        "let* and `and`: inside the window b = a + 1 > 1",
        "smoke", "sugar",
    ),
    _buggy(
        "cond-lucky-seven",
        "(let ([a •]) (cond [(= a 7) (quotient 100 (- a 7))] [else 1]))",
        "cond: the a = 7 clause divides by a - 7",
        "smoke", "sugar",
    ),
    # -- curried unknowns (nested case mappings) --------------------------
    _buggy(
        "curried-unknown",
        "(define h •)\n"
        "(quotient 100 (- 12 ((h 3) 4)))",
        "a curried unknown h with h(3)(4) = 12",
        "higher-order", "curried",
    ),
    _safe(
        "curried-unknown-guarded",
        "(define h •)\n" + _ABS + "(quotient 100 (add1 (my-abs ((h 3) 4))))",
        "curried unknown result wrapped in abs + 1",
        "higher-order", "curried",
    ),
    # -- the demonic context (havoc) --------------------------------------
    _buggy(
        "havoc-probes-lambda",
        "(define unknown •)\n"
        "(unknown (lambda (x) (quotient 100 x)))",
        "an unknown context probes the supplied lambda at 0",
        "smoke", "higher-order", "havoc",
    ),
    _safe(
        "havoc-total-lambda",
        "(define unknown •)\n"
        + _ABS
        + "(unknown (lambda (x) (quotient 100 (add1 (my-abs x)))))",
        "the probed lambda is total: |x| + 1 is never zero",
        "higher-order", "havoc",
    ),
    # -- concrete recursion feeding a constraint --------------------------
    _buggy(
        "factorial-offset",
        "(define (fact n) (if (<= n 1) 1 (* n (fact (- n 1)))))\n"
        "(quotient 100 (- (fact 5) •))",
        "5! - x hits zero at x = 120",
        "recursion",
    ),
    _safe(
        "factorial-offset-abs",
        _ABS
        + "(define (fact n) (if (<= n 1) 1 (* n (fact (- n 1)))))\n"
        + "(quotient 100 (add1 (my-abs (- (fact 5) •))))",
        "|5! - x| + 1 stays positive",
        "recursion",
    ),
    # -- integer remainders in the heap formula ---------------------------
    _buggy(
        "mod-denominator",
        "(quotient 100 (modulo • 3))",
        "x mod 3 is zero for any multiple of 3",
        "first-order", "euclidean",
    ),
    _safe(
        "mod-denominator-shifted",
        "(quotient 100 (add1 (modulo • 3)))",
        "Euclidean mod is nonnegative, so x mod 3 + 1 is positive",
        "first-order", "euclidean",
    ),
    # -- boolean sugar (or / not) -----------------------------------------
    _safe(
        "or-covers-line",
        "(define (covered? x) (or (< x 1) (< 0 x)))\n"
        "(if (covered? •) 3 (quotient 1 0))",
        "x < 1 or 0 < x covers every integer; the error branch is dead",
        "sugar", "boolean",
    ),
    _buggy(
        "window-inside",
        "(define (outside? x) (or (< x 0) (< 10 x)))\n"
        "(if (not (outside? •)) (quotient 1 0) 3)",
        "not/or: any x in [0, 10] reaches the error branch",
        "sugar", "boolean",
    ),
    # -- min/max selection -------------------------------------------------
    _safe(
        "max-with-one",
        "(define (max2 a b) (if (< a b) b a))\n"
        "(define lo •)\n"
        "(quotient 100 (max2 1 lo))",
        "max(1, x) is at least 1 on both branches",
        "first-order",
    ),
    _buggy(
        "min-with-one",
        "(define (min2 a b) (if (< a b) a b))\n"
        "(define lo •)\n"
        "(quotient 100 (min2 1 lo))",
        "min(1, x) can be zero",
        "first-order",
    ),
    # -- two related unknowns ---------------------------------------------
    _safe(
        "strict-gap",
        "(define a •)\n(define b •)\n"
        "(if (< a b) (quotient 100 (- b a)) 2)",
        "a < b makes the gap b - a at least 1",
        "smoke", "first-order", "relational",
    ),
    _buggy(
        "slack-gap",
        "(define a •)\n(define b •)\n"
        "(if (<= a b) (quotient 100 (- b a)) 2)",
        "a <= b admits a zero gap",
        "smoke", "first-order", "relational",
    ),
    # -- predicate chains --------------------------------------------------
    _buggy(
        "pred-chain-three",
        "(define (pred3 x) (sub1 (sub1 (sub1 x))))\n"
        "(if (zero? (pred3 •)) (quotient 1 0) 5)",
        "three sub1s reach zero exactly at x = 3",
        "smoke", "first-order",
    ),
    _safe(
        "pred-chain-guarded",
        _ABS + "(if (zero? (add1 (my-abs •))) (quotient 1 0) 5)",
        "|x| + 1 is never zero, so the error branch is dead",
        "first-order",
    ),
)


_BY_NAME = {p.name: p for p in CORPUS}
assert len(_BY_NAME) == len(CORPUS), "corpus names must be unique"


def get_program(name: str) -> CorpusProgram:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"no corpus program named {name!r}") from None


def corpus_names(*, kind: str | None = None, tag: str | None = None) -> list[str]:
    """Names of corpus programs, optionally filtered by kind or tag."""
    return [
        p.name
        for p in CORPUS
        if (kind is None or p.kind == kind) and (tag is None or tag in p.tags)
    ]

"""The seeded benchmark corpus.

Seventy-eight small higher-order programs in the surface syntax, arranged
as safe/buggy pairs in the style of the paper's §5 evaluation: each
buggy variant seeds exactly the kind of fault the tool exists to find
(a reachable partial-primitive application or contract violation), and
each safe variant guards it so that every symbolic path is provably
error-free.

Four sections:

* the **shared subset** (32 programs) stays contract-free and
  SPCF-expressible, runs on both backends, and is the cross-check
  population for ``--backend both``;
* the **contract section** (16 programs, tag ``contracts``, backend
  ``scv`` only) exercises what only the untyped engine can express:
  flat/dependent/higher-order/data/struct/or contracts on module
  boundaries, opaque imports, and the numeric-tower ``number?`` vs
  ``real?`` distinction behind the paper's ``0+1i`` counterexamples;
* the **synthesis section** (12 programs, tags ``contracts``+``synth``,
  backend ``scv`` only) stresses demonic-context reconstruction
  (``repro.synth``): function-valued opaque imports, callbacks through
  dependent contracts, stateful modules the client drives with
  ``set!``-visible effects, multi-provide dispatch, and nested havoc —
  every buggy variant's finding must re-run concretely through its
  synthesized client;
* the **module-composition section** (6 programs, tags
  ``contracts``+``modules``, backend ``scv`` only): multi-module
  programs — contract chains across two and three module boundaries,
  and top-level expressions calling into monitored provides.  These are
  the granularity population for the persistent store
  (:mod:`repro.store`): under ``--store`` each is decomposed into
  per-module verification units, and their verdicts are pinned to be
  identical decomposed and whole (``tests/test_store.py``);
* the **extended-family section** (12 programs, tag ``extended`` plus
  ``strings``/``vectors``, backend ``scv`` only): the registry's
  string/vector primitive family.  These programs trip the per-program
  opt-in (``uses_extended_prims``) that binds the family's globals and
  widens the opaque tag universe with ``vector``; their seeded faults
  are out-of-range indices (``vector-ref``/``vector-set!``/
  ``substring``) and definite tag violations (``string-append`` on a
  number).

Shared-subset discipline (see ``driver.lower``):

* programs stay inside the SPCF-expressible subset — numbers, first-class
  functions, ``if``/``let``/``cond``/``and``-style sugar, bounded
  recursion, and ``•`` unknowns;
* safe programs terminate symbolically (recursion only on concrete
  bounds) and their safety arguments are linear, so the bundled solver
  can discharge them;
* ``if`` tests always hold comparison/predicate results, keeping PCF
  truthiness (non-zero) and Racket truthiness (non-``#f``) in agreement;
* division sites are either the seeded fault or have guarded
  denominators, so the core's floor division and Racket's truncating
  ``quotient`` never disagree along executed paths.

Every program is tagged; the ``smoke`` tag marks the fast subset CI runs
on every push.
"""

from __future__ import annotations

from dataclasses import dataclass

SAFE = "safe"
BUGGY = "buggy"

_ABS = "(define (my-abs x) (if (< x 0) (- 0 x) x))\n"


@dataclass(frozen=True)
class CorpusProgram:
    """One benchmark: a source text plus its expected verdict.

    ``backends`` annotates which verification engines the program is
    meant for: the contract-free subset runs on both (and ``--backend
    both`` cross-checks their verdicts), while module/contract programs
    are expressible only by the untyped ``scv`` engine."""

    name: str
    kind: str  # SAFE or BUGGY
    source: str
    description: str
    tags: tuple[str, ...] = ()
    backends: tuple[str, ...] = ("core", "scv")

    @property
    def is_buggy(self) -> bool:
        return self.kind == BUGGY


def _safe(name, source, description, *tags):
    return CorpusProgram(name, SAFE, source, description, tuple(tags))


def _buggy(name, source, description, *tags):
    return CorpusProgram(name, BUGGY, source, description, tuple(tags))


def _safe_scv(name, source, description, *tags):
    return CorpusProgram(
        name, SAFE, source, description, ("contracts", *tags), ("scv",)
    )


def _buggy_scv(name, source, description, *tags):
    return CorpusProgram(
        name, BUGGY, source, description, ("contracts", *tags), ("scv",)
    )


def _safe_ext(name, source, description, *tags):
    return CorpusProgram(
        name, SAFE, source, description, ("extended", *tags), ("scv",)
    )


def _buggy_ext(name, source, description, *tags):
    return CorpusProgram(
        name, BUGGY, source, description, ("extended", *tags), ("scv",)
    )


CORPUS: tuple[CorpusProgram, ...] = (
    # -- first-order division guards ------------------------------------
    _safe(
        "div-checked",
        "(define (checked-div n d) (if (= d 0) 0 (quotient n d)))\n"
        "(checked-div 100 •)",
        "division behind an explicit zero test",
        "smoke", "first-order",
    ),
    _buggy(
        "div-unchecked",
        "(define (risky-div n d) (quotient n d))\n"
        "(risky-div 100 •)",
        "unknown denominator reaches quotient unguarded",
        "smoke", "first-order",
    ),
    _safe(
        "abs-denom",
        _ABS + "(quotient 100 (add1 (my-abs •)))",
        "|x| + 1 is provably nonzero on both abs branches",
        "first-order",
    ),
    _buggy(
        "abs-denom-zero",
        _ABS + "(quotient 100 (my-abs •))",
        "|x| alone can still be zero",
        "first-order",
    ),
    # -- the paper's §2 worked example ----------------------------------
    _buggy(
        "intro-unknown-fn",
        "(define (f g) (quotient 100 (- 100 (g 0))))\n"
        "(f •)",
        "§2 introduction: an unknown function returning 100 at 0",
        "higher-order",
    ),
    _safe(
        "intro-unknown-fn-guarded",
        _ABS
        + "(define (f g) (quotient 100 (add1 (my-abs (g 0)))))\n"
        + "(f •)",
        "§2 example with the denominator made positive",
        "higher-order",
    ),
    # -- function composition -------------------------------------------
    _buggy(
        "compose-hole",
        "(define (compose f g) (lambda (x) (f (g x))))\n"
        "((compose (lambda (y) (quotient 100 y)) (lambda (x) (- x 5))) •)",
        "composed pipeline divides by x - 5",
        "higher-order",
    ),
    _safe(
        "compose-guarded",
        _ABS
        + "(define (compose f g) (lambda (x) (f (g x))))\n"
        + "((compose (lambda (y) (quotient 100 y))"
        " (lambda (x) (add1 (my-abs x)))) •)",
        "composed pipeline with a positive inner stage",
        "higher-order",
    ),
    # -- branch-join arithmetic ------------------------------------------
    _safe(
        "clamp-positive",
        "(define (clamp x lo hi) (if (< x lo) lo (if (< hi x) hi x)))\n"
        "(quotient 100 (clamp • 1 10))",
        "clamping into [1, 10] keeps the denominator nonzero",
        "first-order",
    ),
    _buggy(
        "clamp-zero-low",
        "(define (clamp x lo hi) (if (< x lo) lo (if (< hi x) hi x)))\n"
        "(quotient 100 (clamp • 0 10))",
        "clamping into [0, 10] admits a zero denominator",
        "first-order",
    ),
    # -- bounded recursion over an unknown function ----------------------
    _buggy(
        "sum-unknown-fn",
        "(define (sum-f f n) (if (<= n 0) 0 (+ (f n) (sum-f f (- n 1)))))\n"
        "(quotient 100 (sum-f • 3))",
        "f(3) + f(2) + f(1) can sum to zero",
        "higher-order", "recursion",
    ),
    _safe(
        "sum-unknown-fn-abs",
        _ABS
        + "(define (sum-f f n)"
        " (if (<= n 0) 0 (+ (my-abs (f n)) (sum-f f (- n 1)))))\n"
        + "(quotient 100 (add1 (sum-f • 3)))",
        "a sum of absolute values plus one stays positive",
        "higher-order", "recursion",
    ),
    # -- self-application shapes -----------------------------------------
    _buggy(
        "twice-reaches-ten",
        "(define (twice f x) (f (f x)))\n"
        "(quotient 100 (- 10 (twice • 3)))",
        "memoised unknown: f(f(3)) can equal 10",
        "higher-order",
    ),
    _safe(
        "twice-guarded",
        _ABS
        + "(define (twice f x) (f (f x)))\n"
        + "(quotient 100 (add1 (my-abs (twice • 3))))",
        "f(f(3)) wrapped in abs + 1",
        "higher-order",
    ),
    # -- binder/condition sugar ------------------------------------------
    _safe(
        "letstar-and-window",
        "(let* ([a •] [b (add1 a)])\n"
        "  (if (and (< 0 a) (< a 10)) (quotient 100 b) 0))",
        "let* and `and`: inside the window b = a + 1 > 1",
        "smoke", "sugar",
    ),
    _buggy(
        "cond-lucky-seven",
        "(let ([a •]) (cond [(= a 7) (quotient 100 (- a 7))] [else 1]))",
        "cond: the a = 7 clause divides by a - 7",
        "smoke", "sugar",
    ),
    # -- curried unknowns (nested case mappings) --------------------------
    _buggy(
        "curried-unknown",
        "(define h •)\n"
        "(quotient 100 (- 12 ((h 3) 4)))",
        "a curried unknown h with h(3)(4) = 12",
        "higher-order", "curried",
    ),
    _safe(
        "curried-unknown-guarded",
        "(define h •)\n" + _ABS + "(quotient 100 (add1 (my-abs ((h 3) 4))))",
        "curried unknown result wrapped in abs + 1",
        "higher-order", "curried",
    ),
    # -- the demonic context (havoc) --------------------------------------
    _buggy(
        "havoc-probes-lambda",
        "(define unknown •)\n"
        "(unknown (lambda (x) (quotient 100 x)))",
        "an unknown context probes the supplied lambda at 0",
        "smoke", "higher-order", "havoc",
    ),
    _safe(
        "havoc-total-lambda",
        "(define unknown •)\n"
        + _ABS
        + "(unknown (lambda (x) (quotient 100 (add1 (my-abs x)))))",
        "the probed lambda is total: |x| + 1 is never zero",
        "higher-order", "havoc",
    ),
    # -- concrete recursion feeding a constraint --------------------------
    _buggy(
        "factorial-offset",
        "(define (fact n) (if (<= n 1) 1 (* n (fact (- n 1)))))\n"
        "(quotient 100 (- (fact 5) •))",
        "5! - x hits zero at x = 120",
        "recursion",
    ),
    _safe(
        "factorial-offset-abs",
        _ABS
        + "(define (fact n) (if (<= n 1) 1 (* n (fact (- n 1)))))\n"
        + "(quotient 100 (add1 (my-abs (- (fact 5) •))))",
        "|5! - x| + 1 stays positive",
        "recursion",
    ),
    # -- integer remainders in the heap formula ---------------------------
    _buggy(
        "mod-denominator",
        "(quotient 100 (modulo • 3))",
        "x mod 3 is zero for any multiple of 3",
        "first-order", "euclidean",
    ),
    _safe(
        "mod-denominator-shifted",
        "(quotient 100 (add1 (modulo • 3)))",
        "Euclidean mod is nonnegative, so x mod 3 + 1 is positive",
        "first-order", "euclidean",
    ),
    # -- boolean sugar (or / not) -----------------------------------------
    _safe(
        "or-covers-line",
        "(define (covered? x) (or (< x 1) (< 0 x)))\n"
        "(if (covered? •) 3 (quotient 1 0))",
        "x < 1 or 0 < x covers every integer; the error branch is dead",
        "sugar", "boolean",
    ),
    _buggy(
        "window-inside",
        "(define (outside? x) (or (< x 0) (< 10 x)))\n"
        "(if (not (outside? •)) (quotient 1 0) 3)",
        "not/or: any x in [0, 10] reaches the error branch",
        "sugar", "boolean",
    ),
    # -- min/max selection -------------------------------------------------
    _safe(
        "max-with-one",
        "(define (max2 a b) (if (< a b) b a))\n"
        "(define lo •)\n"
        "(quotient 100 (max2 1 lo))",
        "max(1, x) is at least 1 on both branches",
        "first-order",
    ),
    _buggy(
        "min-with-one",
        "(define (min2 a b) (if (< a b) a b))\n"
        "(define lo •)\n"
        "(quotient 100 (min2 1 lo))",
        "min(1, x) can be zero",
        "first-order",
    ),
    # -- two related unknowns ---------------------------------------------
    _safe(
        "strict-gap",
        "(define a •)\n(define b •)\n"
        "(if (< a b) (quotient 100 (- b a)) 2)",
        "a < b makes the gap b - a at least 1",
        "smoke", "first-order", "relational",
    ),
    _buggy(
        "slack-gap",
        "(define a •)\n(define b •)\n"
        "(if (<= a b) (quotient 100 (- b a)) 2)",
        "a <= b admits a zero gap",
        "smoke", "first-order", "relational",
    ),
    # -- predicate chains --------------------------------------------------
    _buggy(
        "pred-chain-three",
        "(define (pred3 x) (sub1 (sub1 (sub1 x))))\n"
        "(if (zero? (pred3 •)) (quotient 1 0) 5)",
        "three sub1s reach zero exactly at x = 3",
        "smoke", "first-order",
    ),
    _safe(
        "pred-chain-guarded",
        _ABS + "(if (zero? (add1 (my-abs •))) (quotient 1 0) 5)",
        "|x| + 1 is never zero, so the error branch is dead",
        "first-order",
    ),
    # ------------------------------------------------------------------
    # Contract-bearing module benchmarks (§4–5): expressible only by the
    # untyped scv backend.  Each module faces a *demonic client* — an
    # unknown context that probes every provided value — so a buggy
    # verdict means "some well-behaved client can make this module (or
    # an unknown import) go wrong", the paper's headline question.
    # ------------------------------------------------------------------
    _buggy_scv(
        "ctc-range-shift",
        "(module m\n"
        "  (define (shift x) (- x 10))\n"
        "  (provide [shift (-> positive? positive?)]))",
        "positive? range broken: x - 10 is nonpositive for small x",
        "smoke", "flat",
    ),
    _safe_scv(
        "ctc-range-shift-up",
        "(module m\n"
        "  (define (shift x) (+ x 10))\n"
        "  (provide [shift (-> positive? positive?)]))",
        "x + 10 stays positive whenever x is",
        "smoke", "flat",
    ),
    _buggy_scv(
        "dep-range-bump",
        "(module m\n"
        "  (define (bump n) (- n 1))\n"
        "  (provide [bump (->d ([n exact-nonnegative-integer?]) (>/c n))]))",
        "dependent range: n - 1 never exceeds n",
        "dependent",
    ),
    _safe_scv(
        "dep-range-bump-up",
        "(module m\n"
        "  (define (bump n) (+ n 1))\n"
        "  (provide [bump (->d ([n exact-nonnegative-integer?]) (>/c n))]))",
        "dependent range: n + 1 always exceeds n",
        "dependent",
    ),
    _buggy_scv(
        "opaque-import-div",
        "(module m\n"
        "  (define-opaque g (-> integer? integer?))\n"
        "  (define (use n) (quotient 100 (g n)))\n"
        "  (provide [use (-> integer? integer?)]))",
        "the opaque import's integer? range admits zero denominators",
        "smoke", "opaque-module",
    ),
    _safe_scv(
        "opaque-import-div-pos",
        "(module m\n"
        "  (define-opaque g (-> integer? positive?))\n"
        "  (define (use n) (quotient 100 (g n)))\n"
        "  (provide [use (-> integer? integer?)]))",
        "strengthening g's range to positive? protects the division",
        "opaque-module",
    ),
    _buggy_scv(
        "ho-domain-apply",
        "(module m\n"
        "  (define (apply-at f) (quotient 100 (f 7)))\n"
        "  (provide [apply-at (-> (-> integer? integer?) integer?)]))",
        "a contracted callback may still return zero at 7",
        "higher-order-ctc",
    ),
    _safe_scv(
        "ho-domain-apply-guarded",
        "(module m\n"
        "  (define (my-abs x) (if (< x 0) (- 0 x) x))\n"
        "  (define (apply-at f) (quotient 100 (add1 (my-abs (f 7)))))\n"
        "  (provide [apply-at (-> (-> integer? integer?) integer?)]))",
        "|f(7)| + 1 is positive for every contracted callback",
        "higher-order-ctc",
    ),
    _buggy_scv(
        "tower-number-compare",
        "(module m\n"
        "  (define (smaller a b) (if (< a b) a b))\n"
        "  (provide [smaller (-> number? number? number?)]))",
        "§5.2-style: number? admits 0+1i, which < rejects",
        "tower",
    ),
    _safe_scv(
        "tower-real-compare",
        "(module m\n"
        "  (define (smaller a b) (if (< a b) a b))\n"
        "  (provide [smaller (-> real? real? real?)]))",
        "tightening the domains to real? makes < total here",
        "tower",
    ),
    _buggy_scv(
        "listof-head-div",
        "(module m\n"
        "  (define (avg-head xs) (quotient 100 (car xs)))\n"
        "  (provide [avg-head\n"
        "            (-> (cons/c integer? (listof integer?)) integer?)]))",
        "the contracted head may be zero",
        "data-ctc",
    ),
    _safe_scv(
        "listof-head-div-guarded",
        "(module m\n"
        "  (define (avg-head xs)\n"
        "    (if (zero? (car xs)) 1 (quotient 100 (car xs))))\n"
        "  (provide [avg-head (-> (cons/c integer? any/c) integer?)]))",
        "the zero head is tested away; the lazy any/c tail keeps the "
        "demonic list walk finite (listof on a safe module diverges "
        "without widening, §4.5)",
        "data-ctc",
    ),
    _buggy_scv(
        "struct-posn-invx",
        "(module geom\n"
        "  (struct posn (x y))\n"
        "  (define (inv-x p) (quotient 100 (posn-x p)))\n"
        "  (provide [inv-x (-> (struct/c posn integer? integer?) integer?)]))",
        "struct/c only pins field types; x may still be zero",
        "struct-ctc",
    ),
    _safe_scv(
        "struct-posn-invx-guarded",
        "(module geom\n"
        "  (struct posn (x y))\n"
        "  (define (inv-x p)\n"
        "    (if (zero? (posn-x p)) 1 (quotient 100 (posn-x p))))\n"
        "  (provide [inv-x (-> (struct/c posn integer? integer?) integer?)]))",
        "the zero field is tested away before dividing",
        "struct-ctc",
    ),
    _buggy_scv(
        "orc-scale",
        "(module m\n"
        "  (define (scale v) (if (boolean? v) 0 (quotient 100 v)))\n"
        "  (provide [scale (-> (or/c boolean? integer?) integer?)]))",
        "the integer disjunct of or/c includes zero",
        "or-ctc",
    ),
    _safe_scv(
        "orc-scale-shifted",
        "(module m\n"
        "  (define (scale v) (if (boolean? v) 0 (add1 v)))\n"
        "  (provide [scale (-> (or/c boolean? integer?) integer?)]))",
        "the non-boolean disjunct is total arithmetic",
        "or-ctc",
    ),
    # ------------------------------------------------------------------
    # Demonic-context synthesis scenarios (tag `synth`): module programs
    # whose counterexamples exercise `repro.synth` — the blame only
    # reproduces when the *client itself* is reconstructed concretely
    # (function-valued opaque imports rendered as dispatch lambdas,
    # callbacks fed through dependent contracts, stateful modules driven
    # by the client, multi-provide dispatch, nested havoc).
    # ------------------------------------------------------------------
    _buggy_scv(
        "fn-opaque-constant",
        "(module m\n"
        "  (define-opaque f (-> integer? integer?))\n"
        "  (define (probe) (quotient 100 (- 10 (f 5))))\n"
        "  (provide [probe (-> integer?)]))",
        "a function-valued opaque import with f(5) = 10 zeroes the "
        "denominator; the synthesized client pins f as a dispatch lambda",
        "smoke", "synth", "opaque-module",
    ),
    _safe_scv(
        "fn-opaque-constant-guarded",
        "(module m\n"
        "  (define-opaque f (-> integer? integer?))\n"
        "  (define (my-abs x) (if (< x 0) (- 0 x) x))\n"
        "  (define (probe) (quotient 100 (add1 (my-abs (- 10 (f 5))))))\n"
        "  (provide [probe (-> integer?)]))",
        "|10 - f(5)| + 1 is positive for every integer-valued f",
        "synth", "opaque-module",
    ),
    _buggy_scv(
        "callback-diff",
        "(module m\n"
        "  (define (diff f) (- (f 0) (f 0)))\n"
        "  (provide [diff (-> (-> integer? integer?) positive?)]))",
        "functional consistency: f(0) - f(0) is zero, breaking the "
        "positive? range for every synthesized callback",
        "synth", "higher-order-ctc",
    ),
    _safe_scv(
        "callback-diff-abs",
        "(module m\n"
        "  (define (my-abs x) (if (< x 0) (- 0 x) x))\n"
        "  (define (diff f) (add1 (my-abs (- (f 0) (f 0)))))\n"
        "  (provide [diff (-> (-> integer? integer?) positive?)]))",
        "|f(0) - f(0)| + 1 is positive whatever the callback returns",
        "synth", "higher-order-ctc",
    ),
    _buggy_scv(
        "dep-ctc-callback",
        "(module m\n"
        "  (define (between lo) (lambda (x) (quotient 100 (- x lo))))\n"
        "  (provide [between (->d ([lo integer?])\n"
        "                         (-> (and/c integer? (>=/c lo)) integer?))]))",
        "nested havoc: the client calls (between lo) and then applies "
        "the returned function at x = lo, where x - lo is zero",
        "synth", "dependent", "nested-havoc",
    ),
    _safe_scv(
        "dep-ctc-callback-strict",
        "(module m\n"
        "  (define (between lo) (lambda (x) (quotient 100 (- x lo))))\n"
        "  (provide [between (->d ([lo integer?])\n"
        "                         (-> (and/c integer? (>/c lo)) integer?))]))",
        "strictly above lo, x - lo is at least one",
        "synth", "dependent", "nested-havoc",
    ),
    _buggy_scv(
        "stateful-counter",
        "(module m\n"
        "  (define calls 0)\n"
        "  (define (tick) (begin (set! calls (add1 calls))\n"
        "                        (quotient 100 (- 1 calls))))\n"
        "  (provide [tick (-> integer?)]))",
        "module state: the client's very first tick sets calls to 1 and "
        "divides by 1 - calls",
        "smoke", "synth", "state",
    ),
    _safe_scv(
        "stateful-counter-guarded",
        "(module m\n"
        "  (define calls 0)\n"
        "  (define (tick) (begin (set! calls (add1 calls))\n"
        "                        (quotient 100 (add1 calls))))\n"
        "  (provide [tick (-> integer?)]))",
        "calls + 1 is at least 2 after the increment",
        "synth", "state",
    ),
    _buggy_scv(
        "two-provides",
        "(module m\n"
        "  (define (fine x) (+ x 1))\n"
        "  (define (risky x) (quotient 100 x))\n"
        "  (provide [fine (-> integer? integer?)]\n"
        "           [risky (-> integer? integer?)]))",
        "client dispatch over two provides: only probing risky at 0 "
        "finds the fault",
        "synth", "multi-provide",
    ),
    _safe_scv(
        "two-provides-guarded",
        "(module m\n"
        "  (define (fine x) (+ x 1))\n"
        "  (define (risky x) (if (zero? x) 1 (quotient 100 x)))\n"
        "  (provide [fine (-> integer? integer?)]\n"
        "           [risky (-> integer? integer?)]))",
        "both provides are total on integers",
        "synth", "multi-provide",
    ),
    _buggy_scv(
        "ho-opaque-twice",
        "(module m\n"
        "  (define-opaque g (-> integer? integer?))\n"
        "  (define (run) (quotient 100 (g (g 3))))\n"
        "  (provide [run (-> integer?)]))",
        "nested applications of an opaque function: g(3) = a, g(a) = 0 "
        "synthesizes a two-entry dispatch lambda",
        "synth", "opaque-module",
    ),
    _safe_scv(
        "ho-opaque-twice-guarded",
        "(module m\n"
        "  (define-opaque g (-> integer? integer?))\n"
        "  (define (my-abs x) (if (< x 0) (- 0 x) x))\n"
        "  (define (run) (quotient 100 (add1 (my-abs (g (g 3))))))\n"
        "  (provide [run (-> integer?)]))",
        "|g(g(3))| + 1 is positive for every integer-valued g",
        "synth", "opaque-module",
    ),
    # ------------------------------------------------------------------
    # Module composition (scv only; tags contracts+modules).  Multi-
    # module programs: the persistent store (repro.store) decomposes
    # these into per-module verification units, so they pin both the
    # decomposition's verdict-equivalence and its cache granularity
    # (editing one module re-verifies only the units that can reach it).
    # ------------------------------------------------------------------
    _buggy_scv(
        "modules-chain-div",
        "(module lib\n"
        "  (define (half x) (quotient x 2))\n"
        "  (provide [half (-> integer? integer?)]))\n"
        "(module app\n"
        "  (define (use n) (quotient 100 (half n)))\n"
        "  (provide [use (-> integer? integer?)]))",
        "two boundaries: half may return 0, app divides by it",
        "smoke", "modules",
    ),
    _safe_scv(
        "modules-chain-div-guarded",
        "(module lib\n"
        "  (define (my-abs x) (if (< x 0) (- 0 x) x))\n"
        "  (define (bump x) (+ (my-abs x) 1))\n"
        "  (provide [bump (-> integer? positive?)]))\n"
        "(module app\n"
        "  (define (use n) (quotient 100 (bump n)))\n"
        "  (provide [use (-> integer? integer?)]))",
        "bump's positive? range protects app's division",
        "smoke", "modules",
    ),
    _buggy_scv(
        "modules-main-prim-div",
        "(module lib\n"
        "  (define (f x) (- x x))\n"
        "  (provide [f (-> integer? integer?)]))\n"
        "(quotient 100 (f 5))",
        "the top-level expression divides by f(5) = 0",
        "modules",
    ),
    _safe_scv(
        "modules-main-prim-div-guarded",
        "(module lib\n"
        "  (define (my-abs x) (if (< x 0) (- 0 x) x))\n"
        "  (define (f x) (+ (my-abs (- x x)) 1))\n"
        "  (provide [f (-> integer? integer?)]))\n"
        "(quotient 100 (f 5))",
        "f always returns 1, so the top-level division is total",
        "modules",
    ),
    _buggy_scv(
        "modules-triple-pipeline",
        "(module m1\n"
        "  (define (dec x) (- x 1))\n"
        "  (provide [dec (-> integer? integer?)]))\n"
        "(module m2\n"
        "  (define (prep n) (dec (dec n)))\n"
        "  (provide [prep (-> integer? integer?)]))\n"
        "(module m3\n"
        "  (define (run n) (quotient 100 (prep n)))\n"
        "  (provide [run (-> integer? integer?)]))",
        "three boundaries: prep(2) = 0 reaches m3's division",
        "modules",
    ),
    _safe_scv(
        "modules-triple-pipeline-guarded",
        "(module m1\n"
        "  (define (dec x) (- x 1))\n"
        "  (provide [dec (-> integer? integer?)]))\n"
        "(module m2\n"
        "  (define (prep n) (dec (dec n)))\n"
        "  (provide [prep (-> integer? integer?)]))\n"
        "(module m3\n"
        "  (define (my-abs x) (if (< x 0) (- 0 x) x))\n"
        "  (define (run n) (quotient 100 (+ (my-abs (prep n)) 1)))\n"
        "  (provide [run (-> integer? integer?)]))",
        "|prep(n)| + 1 keeps m3's denominator positive",
        "modules",
    ),
    # ------------------------------------------------------------------
    # Extended string/vector primitive family (scv only — the typed
    # core's SPCF slice has no string or vector sorts).  These programs
    # opt the machine into the family (``SMachine(extended_prims=True)``
    # via ``uses_extended_prims``): the base frame binds the extra
    # globals and ``TAG_VECTOR`` joins the opaque tag universe.  The
    # seeded faults are the family's partial-primitive preconditions:
    # out-of-range indices and definite tag violations.
    # ------------------------------------------------------------------
    _buggy_ext(
        "vector-ref-unchecked",
        "(define (pick i) (vector-ref (vector 1 2 3) i))\n"
        "(pick •)",
        "an unknown index reaches vector-ref unguarded",
        "vectors", "smoke",
    ),
    _safe_ext(
        "vector-ref-clamped",
        "(define (clamp i) (if (< i 0) 0 (if (< i 3) i 0)))\n"
        "(define (pick i) (vector-ref (vector 1 2 3) (clamp i)))\n"
        "(pick •)",
        "clamping proves the index lies in [0, 2] on every path",
        "vectors", "smoke",
    ),
    _buggy_ext(
        "vector-set-unchecked",
        "(define (poke i) (vector-set! (vector 0 0) i 7))\n"
        "(poke •)",
        "an unknown index reaches vector-set! unguarded",
        "vectors",
    ),
    _safe_ext(
        "vector-last",
        "(define (final v) (vector-ref v (- (vector-length v) 1)))\n"
        "(final (vector 4 5 6))",
        "length - 1 of a nonempty vector is always in range",
        "vectors",
    ),
    _buggy_ext(
        "vector-length-off-by-one",
        "(define (beyond v) (vector-ref v (vector-length v)))\n"
        "(beyond (vector 4 5 6))",
        "indexing at the length is one past the last slot",
        "vectors",
    ),
    _safe_ext(
        "vector-opaque-peek",
        "(define (peek v) (vector-ref v 1))\n"
        "(peek •)",
        "an opaque vector's element is a fresh unknown, never an error",
        "vectors",
    ),
    _buggy_ext(
        "substring-window",
        "(define (cut i) (substring \"window\" i (add1 i)))\n"
        "(cut •)",
        "the one-character window can start outside the string",
        "strings", "smoke",
    ),
    _safe_ext(
        "substring-window-guarded",
        "(define (cut i)\n"
        "  (if (< i 0) \"\" (if (< i 5) (substring \"window\" i (add1 i)) \"\")))\n"
        "(cut •)",
        "0 <= i < 5 keeps both window endpoints inside the string",
        "strings", "smoke",
    ),
    _buggy_ext(
        "substring-take",
        "(define (take n) (substring \"hi\" 0 n))\n"
        "(take •)",
        "an unknown prefix length can exceed the string (or be negative)",
        "strings",
    ),
    _safe_ext(
        "string-measure",
        "(define (measure s) (add1 (string-length s)))\n"
        "(measure •)",
        "string-length of any string is an integer; add1 total on it",
        "strings",
    ),
    _buggy_ext(
        "string-append-number",
        "(define (label n) (string-append \"n = \" n))\n"
        "(label (add1 •))",
        "add1 makes the argument definitely a number, never a string",
        "strings",
    ),
    _safe_ext(
        "string-compare-branch",
        "(define (greet s) (if (string=? s \"hi\") \"hello\" \"bye\"))\n"
        "(greet •)",
        "string=? on an unknown string answers an unknown boolean, safely",
        "strings",
    ),
)


_BY_NAME = {p.name: p for p in CORPUS}
assert len(_BY_NAME) == len(CORPUS), "corpus names must be unique"


def get_program(name: str) -> CorpusProgram:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"no corpus program named {name!r}") from None


def corpus_names(
    *,
    kind: str | None = None,
    tag: str | None = None,
    backend: str | None = None,
) -> list[str]:
    """Names of corpus programs, optionally filtered by kind, tag, or
    supporting backend."""
    return [
        p.name
        for p in CORPUS
        if (kind is None or p.kind == kind)
        and (tag is None or tag in p.tags)
        and (backend is None or backend in p.backends)
    ]

"""Counterexample construction — paper §3.5.

At an error state the heap's refinements describe the condition under
which the program goes wrong, and — because unknown functions were
partially solved into ``case`` mappings and wrapper lambdas as they were
applied — only *first-order* unknowns remain.  A model of the heap
formula therefore determines a complete, concrete, potentially
higher-order input:

* opaque base values are read off the model;
* ``case`` mappings become nested-``if`` lambdas over their (modelled)
  entries;
* wrapper/constant lambdas are concretised recursively;
* opaque functions that were never applied are irrelevant to the error
  and become default constant functions.

Every counterexample is then *validated* by re-running the instantiated
program concretely (§4.5) — Theorem 1 says this always reproduces the
error, and the soundness test suite checks exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..smt import Model, get_model, mk_var
from .concrete import Timeout, run
from .heap import Heap, SCase, SLam, SNum, SOpq
from .machine import State, _opq_loc
from .syntax import (
    App,
    Err,
    Expr,
    Fix,
    FunType,
    If,
    Lam,
    Loc,
    NAT,
    NatType,
    Num,
    Opq,
    PrimApp,
    Ref,
    Type,
    prim,
    subexprs,
)
from .translate import translate_heap


class ReconstructionError(Exception):
    """The heap could not be concretised (cyclic reference chain)."""


#: Canonical (surface-syntax) names for core δ operations.  Both
#: backends render counterexamples against surface names — the core
#: machine errors with ``div`` where the scv machine blames ``quotient``
#: — so the report's cross-backend agreement section can compare them
#: field by field.  ``driver.lower`` reuses this table when raising
#: counterexample values back to surface syntax.
CANONICAL_OPS = {
    "+": "+",
    "-": "-",
    "*": "*",
    "div": "quotient",
    "mod": "modulo",
    "=?": "=",
    "<?": "<",
    "<=?": "<=",
    "add1": "add1",
    "sub1": "sub1",
    "zero?": "zero?",
}


def canonical_op(op: str) -> str:
    """The canonical (surface) name of a core δ operation."""
    return CANONICAL_OPS.get(op, op)


def render_bindings(cex: "Counterexample") -> dict[str, str]:
    """Counterexample bindings as canonical surface-syntax strings
    (``pp``): scalars render bare (``0``), functions as ``(fun x → …)``."""
    from .pretty import pp

    return {label: pp(v) for label, v in cex.bindings.items()}


def default_value(t: Type) -> Expr:
    """An arbitrary closed value of type ``t`` (used for unknowns the
    error does not depend on)."""
    if isinstance(t, NatType):
        return Num(0)
    assert isinstance(t, FunType)
    return Lam("_", t.dom, default_value(t.rng))


@dataclass
class Counterexample:
    """A concrete instantiation of a program's opaque values."""

    bindings: dict[str, Expr]  # opaque label -> closed expression
    model: Model
    err: Err
    validated: Optional[bool] = None  # None = not checked

    def binding(self, label: str) -> Expr:
        return self.bindings[label]

    def __repr__(self) -> str:
        rows = ", ".join(f"•^{k} = {v!r}" for k, v in self.bindings.items())
        return f"Counterexample({rows}; {self.err!r})"


class Reconstructor:
    """Concretises heap locations under a first-order model."""

    def __init__(self, heap: Heap, model: Model) -> None:
        self.heap = heap
        self.model = model
        self._memo: dict[Loc, Expr] = {}
        self._in_progress: set[Loc] = set()

    def loc_value(self, l: Loc) -> Expr:
        if l in self._memo:
            return self._memo[l]
        if l in self._in_progress:
            raise ReconstructionError(f"cyclic heap reference at {l.name}")
        self._in_progress.add(l)
        try:
            out = self._build(l)
        finally:
            self._in_progress.discard(l)
        self._memo[l] = out
        return out

    def _model_int(self, l: Loc) -> int:
        return self.model[mk_var(l.name)]

    def _build(self, l: Loc) -> Expr:
        s = self.heap.get(l)
        if isinstance(s, SNum):
            return Num(s.value)
        if isinstance(s, SOpq):
            if isinstance(s.type, NatType):
                return Num(self._model_int(l))
            return default_value(s.type)
        if isinstance(s, SLam):
            return self._concretize_expr(s.lam)
        if isinstance(s, SCase):
            return self._build_case(s)
        raise TypeError(f"cannot reconstruct {s!r}")

    def _build_case(self, s: SCase) -> Expr:
        """``case [L1 ↦ La] ...`` as ``λx. if x = n1 then v1 ... else d``.

        Entry keys are base values; evaluating them under the model and
        deduplicating is sound because the heap translation asserts equal
        keys map to equal outputs.
        """
        entries: list[tuple[int, Expr]] = []
        seen: set[int] = set()
        for k, v in s.mapping:
            key = self._key_int(k)
            if key in seen:
                continue
            seen.add(key)
            entries.append((key, self.loc_value(v)))
        default = entries[0][1] if entries else default_value(s.out_type)
        body: Expr = default
        for key, out in reversed(entries):
            body = If(prim("=?", Ref("x"), Num(key)), out, body)
        return Lam("x", NAT, body)

    def _key_int(self, l: Loc) -> int:
        st = self.heap.get(l)
        if isinstance(st, SNum):
            return st.value
        return self._model_int(l)

    def _concretize_expr(self, e: Expr) -> Expr:
        """Replace every location occurring in an expression with its
        concrete value."""
        if isinstance(e, Loc):
            return self.loc_value(e)
        if isinstance(e, (Num, Ref, Opq)):
            return e
        if isinstance(e, Lam):
            return Lam(e.var, e.var_type, self._concretize_expr(e.body))
        if isinstance(e, Fix):
            return Fix(e.var, e.var_type, self._concretize_expr(e.body))
        if isinstance(e, App):
            return App(self._concretize_expr(e.fn), self._concretize_expr(e.arg))
        if isinstance(e, If):
            return If(
                self._concretize_expr(e.test),
                self._concretize_expr(e.then),
                self._concretize_expr(e.orelse),
            )
        if isinstance(e, PrimApp):
            return PrimApp(
                e.op,
                tuple(self._concretize_expr(a) for a in e.args),
                e.label,
            )
        raise TypeError(f"cannot concretise {e!r}")


def instantiate(program: Expr, bindings: dict[str, Expr]) -> Expr:
    """Replace each opaque value in ``program`` by its binding."""
    if isinstance(program, Opq):
        if program.label not in bindings:
            return default_value(program.type)
        return bindings[program.label]
    if isinstance(program, (Num, Ref, Loc, Err)):
        return program
    if isinstance(program, Lam):
        return Lam(program.var, program.var_type, instantiate(program.body, bindings))
    if isinstance(program, Fix):
        return Fix(program.var, program.var_type, instantiate(program.body, bindings))
    if isinstance(program, App):
        return App(instantiate(program.fn, bindings), instantiate(program.arg, bindings))
    if isinstance(program, If):
        return If(
            instantiate(program.test, bindings),
            instantiate(program.then, bindings),
            instantiate(program.orelse, bindings),
        )
    if isinstance(program, PrimApp):
        return PrimApp(
            program.op,
            tuple(instantiate(a, bindings) for a in program.args),
            program.label,
        )
    raise TypeError(f"cannot instantiate {program!r}")


def construct(
    program: Expr,
    error_state: State,
    *,
    mode: str = "implications",
    validate: bool = True,
    fuel: int = 200_000,
) -> Optional[Counterexample]:
    """Build (and optionally validate) a counterexample from an error
    state reached by symbolic execution of ``program``.

    Returns None when the heap formula has no model the solver can find —
    either the path is spurious (impossible without abstraction, Thm 1)
    or the solver answered UNKNOWN (the relative-completeness boundary).
    """
    err = error_state.control
    assert isinstance(err, Err)
    heap = error_state.heap

    phi = translate_heap(heap, mode=mode)
    model = get_model(phi)  # cached: the proof relation often already
    if model is None:       # solved this very heap formula
        return None

    recon = Reconstructor(heap, model)
    bindings: dict[str, Expr] = {}
    for node in subexprs(program):
        if not isinstance(node, Opq):
            continue
        l = _opq_loc(node.label)
        if l in heap:
            try:
                bindings[node.label] = recon.loc_value(l)
            except ReconstructionError:
                bindings[node.label] = default_value(node.type)
        else:
            bindings[node.label] = default_value(node.type)

    cex = Counterexample(bindings, model, err)
    if validate:
        cex.validated = check_counterexample(program, cex, fuel=fuel)
    return cex


def check_counterexample(
    program: Expr, cex: Counterexample, *, fuel: int = 200_000
) -> bool:
    """Re-run the instantiated program concretely and confirm it raises
    the same error (same blame label) — the Theorem 1 check."""
    closed = instantiate(program, cex.bindings)
    try:
        answer = run(closed, fuel=fuel)
    except Timeout:
        return False
    return answer.is_error and answer.error.label == cex.err.label

"""The proof relation ``Σ ⊢ L : P`` — paper Fig. 5.

Three-valued judgement deciding whether the value at location ``L``
satisfies predicate ``P`` under the assumptions recorded in the heap:

* ``PROVED``  — ``{{Σ}} ⇒ {{L : P}}`` is valid: every instantiation
  satisfies ``P``;
* ``REFUTED`` — ``{{Σ}} ∧ {{L : P}}`` is unsatisfiable: every
  instantiation fails ``P``;
* ``AMBIG``   — neither; execution must branch.

Precision (not soundness) depends on this relation: answering AMBIG for
everything would still be sound but would explore spurious paths.  Fast
syntactic checks on concrete numbers avoid most solver calls.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..smt import PathContext, Result, check_sat, mk_not
from .heap import (
    HConst,
    Heap,
    HLoc,
    HOp,
    HTerm,
    PEq,
    PLe,
    PLt,
    PNot,
    Pred,
    PZero,
    SNum,
    SOpq,
)
from .syntax import Loc
from .translate import (
    loc_var,
    translate_heap,
    translate_heap_parts,
    translate_pred,
)


class Verdict(enum.Enum):
    PROVED = "!"
    REFUTED = "x"
    AMBIG = "?"


def _eval_hterm_concrete(t: HTerm, heap: Heap) -> Optional[int]:
    """Evaluate a heap term if every location it mentions is concrete."""
    if isinstance(t, HConst):
        return t.value
    if isinstance(t, HLoc):
        s = heap.get(t.loc)
        return s.value if isinstance(s, SNum) else None
    if isinstance(t, HOp):
        args = [_eval_hterm_concrete(a, heap) for a in t.args]
        if any(a is None for a in args):
            return None
        a = args
        if t.op == "+":
            return sum(a)  # type: ignore[arg-type]
        if t.op == "-":
            return a[0] - a[1]  # type: ignore[operator]
        if t.op == "*":
            out = 1
            for v in a:
                out *= v  # type: ignore[assignment]
            return out
        if t.op == "div":
            if a[1] == 0:
                return None
            return a[0] // a[1]  # type: ignore[operator]
        if t.op == "mod":
            if a[1] == 0:
                return None
            return a[0] % abs(a[1])  # type: ignore[operator, arg-type]
    return None


def _check_concrete(value: int, p: Pred, heap: Heap) -> Optional[bool]:
    """Decide a predicate on a concrete number without the solver, when
    the predicate's heap terms are themselves concrete."""
    if isinstance(p, PZero):
        return value == 0
    if isinstance(p, (PEq, PLt, PLe)):
        rhs = _eval_hterm_concrete(p.term, heap)
        if rhs is None:
            return None
        if isinstance(p, PEq):
            return value == rhs
        if isinstance(p, PLt):
            return value < rhs
        return value <= rhs
    if isinstance(p, PNot):
        sub = _check_concrete(value, p.arg, heap)
        return None if sub is None else (not sub)
    return None


class ProofSystem:
    """Decides ``Σ ⊢ L : P`` using syntactic fast paths and the solver.

    Heaps are immutable values, so no *judgement* is cached across
    queries — but with ``incremental`` (the default) the instance owns a
    per-path solver context (:class:`~repro.smt.PathContext`): the
    heap's conjuncts stay asserted between queries, sibling paths fork
    the context at their shared prefix, and the paired ``ψ`` / ``¬ψ``
    checks run as assumptions on one context instead of two from-scratch
    solves.  ``incremental=False`` restores the pre-incremental one-shot
    behaviour (per-query ``check_sat``) for differential debugging.
    """

    def __init__(self, *, mode: str = "implications",
                 incremental: bool = True) -> None:
        self.mode = mode
        self.queries = 0
        self.solver_queries = 0
        self._ctx = PathContext() if incremental else None

    def note_path(self, state) -> None:
        """Search-kernel hook: a (possibly different) path's state was
        popped for expansion; the solver scope forks lazily at the next
        query."""
        if self._ctx is not None:
            self._ctx.note_switch()

    def _translate_parts(self, heap: Heap):
        return translate_heap_parts(heap, mode=self.mode)

    def check(self, heap: Heap, l: Loc, p: Pred) -> Verdict:
        self.queries += 1
        s = heap.get(l)
        # Fast path: concrete subject.
        if isinstance(s, SNum):
            v = _check_concrete(s.value, p, heap)
            if v is True:
                return Verdict.PROVED
            if v is False:
                return Verdict.REFUTED
        # Fast path: the refinement is already recorded verbatim.
        if isinstance(s, SOpq):
            if p in s.refinements:
                return Verdict.PROVED
            if PNot(p) in s.refinements:
                return Verdict.REFUTED
            if isinstance(p, PNot) and p.arg in s.refinements:
                return Verdict.REFUTED
        # Solver path (Fig. 5).
        self.solver_queries += 1
        psi = translate_pred(p, loc_var(l))
        if self._ctx is not None:
            parts = self._ctx.parts_for(heap, self._translate_parts)
            # {Σ} ∧ ¬{L:P} unsat  ⇒  valid implication  ⇒  PROVED
            if self._ctx.check_under(parts, mk_not(psi)) is Result.UNSAT:
                return Verdict.PROVED
            if self._ctx.check_under(parts, psi) is Result.UNSAT:
                return Verdict.REFUTED
            return Verdict.AMBIG
        phi = translate_heap(heap, mode=self.mode)
        # {Σ} ∧ ¬{L:P} unsat  ⇒  valid implication  ⇒  PROVED
        neg = check_sat(phi, mk_not(psi))
        if neg is Result.UNSAT:
            return Verdict.PROVED
        pos = check_sat(phi, psi)
        if pos is Result.UNSAT:
            return Verdict.REFUTED
        return Verdict.AMBIG

"""Heaps and storeables — paper Fig. 1 (bottom half).

A heap ``Σ`` maps locations to storeables ``S``:

* ``SNum`` — a concrete number;
* ``SLam`` — a lambda whose free variables have been substituted by
  locations (the machine is substitution-based, like the paper's);
* ``SOpq`` — an opaque value of some type carrying a conjunction of
  *refinements*, the incrementally accumulated upper bound on its
  behaviour (``•{T, P...}``);
* ``SCase`` — a memoising mapping ``caseT [Lx ↦ La]...`` approximating an
  unknown function with base-type input.  This construct is the paper's
  key device for completeness: it forces unknown functions to return
  equal outputs on equal inputs.

Refinement predicates are a small structured language (rather than raw
program lambdas) because the proof system "only needs to handle
predicates of simple forms and not their arbitrary compositions" (§3.4);
execution itself decomposes complex predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from .syntax import Lam, Loc, Type


# ---------------------------------------------------------------------------
# Heap terms: arithmetic over locations, used inside refinements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HTerm:
    def __post_init__(self) -> None:  # pragma: no cover - abstract guard
        if type(self) is HTerm:
            raise TypeError("HTerm is abstract")


@dataclass(frozen=True)
class HConst(HTerm):
    value: int

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class HLoc(HTerm):
    loc: Loc

    def __repr__(self) -> str:
        return self.loc.name


@dataclass(frozen=True)
class HOp(HTerm):
    """Arithmetic over heap terms: op in {+, -, *, div, mod}."""

    op: str
    args: tuple[HTerm, ...]

    def __repr__(self) -> str:
        return f"({self.op} " + " ".join(map(repr, self.args)) + ")"


def hloc(l: Loc) -> HLoc:
    return HLoc(l)


def hconst(n: int) -> HConst:
    return HConst(n)


def hterm_locs(t: HTerm) -> Iterator[Loc]:
    if isinstance(t, HLoc):
        yield t.loc
    elif isinstance(t, HOp):
        for a in t.args:
            yield from hterm_locs(a)


# ---------------------------------------------------------------------------
# Refinement predicates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Pred:
    """A predicate over a single (implicit) subject value ``x``."""

    def __post_init__(self) -> None:  # pragma: no cover - abstract guard
        if type(self) is Pred:
            raise TypeError("Pred is abstract")


@dataclass(frozen=True)
class PZero(Pred):
    """``λx. zero? x``"""

    def __repr__(self) -> str:
        return "zero?"


@dataclass(frozen=True)
class PEq(Pred):
    """``λx. x = t``"""

    term: HTerm

    def __repr__(self) -> str:
        return f"(≡ {self.term!r})"


@dataclass(frozen=True)
class PLt(Pred):
    """``λx. x < t``"""

    term: HTerm

    def __repr__(self) -> str:
        return f"(< {self.term!r})"


@dataclass(frozen=True)
class PLe(Pred):
    """``λx. x <= t``"""

    term: HTerm

    def __repr__(self) -> str:
        return f"(<= {self.term!r})"


@dataclass(frozen=True)
class PNot(Pred):
    """Negation of a simple predicate."""

    arg: Pred

    def __repr__(self) -> str:
        return f"¬{self.arg!r}"


def pred_locs(p: Pred) -> Iterator[Loc]:
    if isinstance(p, (PEq, PLt, PLe)):
        yield from hterm_locs(p.term)
    elif isinstance(p, PNot):
        yield from pred_locs(p.arg)


# ---------------------------------------------------------------------------
# Storeables
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Storeable:
    def __post_init__(self) -> None:  # pragma: no cover - abstract guard
        if type(self) is Storeable:
            raise TypeError("Storeable is abstract")


@dataclass(frozen=True)
class SNum(Storeable):
    value: int

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class SLam(Storeable):
    """A lambda value; free variables already substituted by locations."""

    lam: Lam

    def __repr__(self) -> str:
        return repr(self.lam)


@dataclass(frozen=True)
class SOpq(Storeable):
    """``•{T, P...}`` — opaque value with refinements."""

    type: Type
    refinements: tuple[Pred, ...] = ()

    def refined(self, p: Pred) -> "SOpq":
        if p in self.refinements:
            return self
        return SOpq(self.type, self.refinements + (p,))

    def __repr__(self) -> str:
        if not self.refinements:
            return f"•{self.type!r}"
        preds = ", ".join(map(repr, self.refinements))
        return f"•{{{self.type!r}, {preds}}}"


@dataclass(frozen=True)
class SCase(Storeable):
    """``caseT [Lx ↦ La] ...`` — memoising approximation of an unknown
    function of type nat → out_type."""

    out_type: Type
    mapping: tuple[tuple[Loc, Loc], ...] = ()

    def lookup(self, arg: Loc) -> Optional[Loc]:
        for k, v in self.mapping:
            if k == arg:
                return v
        return None

    def extended(self, arg: Loc, out: Loc) -> "SCase":
        return SCase(self.out_type, self.mapping + ((arg, out),))

    def __repr__(self) -> str:
        entries = " ".join(f"[{k.name} ↦ {v.name}]" for k, v in self.mapping)
        return f"case{self.out_type!r} {entries}"


# ---------------------------------------------------------------------------
# The heap
# ---------------------------------------------------------------------------

_loc_counter = 0


def fresh_loc(prefix: str = "L") -> Loc:
    """A globally fresh heap location."""
    global _loc_counter
    loc = Loc(f"{prefix}{_loc_counter}")
    _loc_counter += 1
    return loc


def reset_locs() -> None:
    """Restart the location counter.

    Locations only need to be fresh within one program run; the batch
    driver resets between programs so solver variable names — and hence
    model choices — do not depend on what else ran in the same process.
    """
    global _loc_counter
    _loc_counter = 0


def current_loc_counter() -> int:
    """The next location number ``fresh_loc`` would mint.

    States record this (``loc_base``) so the machines can rewind the
    counter before stepping: location names become a pure function of
    the path from the initial state, independent of the order in which
    the search — sequential or sharded across processes — interleaves
    sibling branches.
    """
    return _loc_counter


def set_loc_counter(n: int) -> None:
    """Rewind/advance the location counter to ``n`` (see
    :func:`current_loc_counter`)."""
    global _loc_counter
    _loc_counter = n


class Heap:
    """An immutable heap; updates return new heaps.

    Copy-on-write over a plain dict: reads are O(1), updates copy the
    mapping.  Heaps in the benchmark programs stay small (tens to a few
    hundred locations), and immutability is what makes the
    nondeterministic search trivially correct — sibling branches can
    never see each other's refinements.
    """

    __slots__ = ("_d",)

    def __init__(self, entries: Optional[dict[Loc, Storeable]] = None) -> None:
        self._d: dict[Loc, Storeable] = entries if entries is not None else {}

    @staticmethod
    def empty() -> "Heap":
        return Heap()

    def get(self, l: Loc) -> Storeable:
        try:
            return self._d[l]
        except KeyError:
            raise KeyError(f"unallocated location {l.name}") from None

    def __contains__(self, l: Loc) -> bool:
        return l in self._d

    def set(self, l: Loc, s: Storeable) -> "Heap":
        """Functional update (allocates if absent)."""
        d = dict(self._d)
        d[l] = s
        return Heap(d)

    def alloc(self, s: Storeable, prefix: str = "L") -> tuple[Loc, "Heap"]:
        l = fresh_loc(prefix)
        return l, self.set(l, s)

    def refine(self, l: Loc, p: Pred) -> "Heap":
        """Add refinement ``p`` to the opaque value at ``l``."""
        s = self.get(l)
        if not isinstance(s, SOpq):
            raise TypeError(f"cannot refine non-opaque {s!r} at {l.name}")
        return self.set(l, s.refined(p))

    def items(self) -> Iterator[tuple[Loc, Storeable]]:
        return iter(self._d.items())

    def locations(self) -> Iterator[Loc]:
        return iter(self._d.keys())

    def __len__(self) -> int:
        return len(self._d)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Heap) and self._d == other._d

    def __repr__(self) -> str:
        rows = ", ".join(f"{k.name} ↦ {v!r}" for k, v in self._d.items())
        return f"[{rows}]"

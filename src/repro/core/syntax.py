"""Syntax of Symbolic PCF (SPCF) — paper Fig. 1.

SPCF is simply-typed PCF extended with *opaque* values ``•T`` standing for
unknown-but-fixed closed values of type ``T``.  Expressions carry labels:

* every opaque value has a unique label identifying its source position;
* every primitive application has a unique label used for blame in error
  answers ``errLO`` (the label is semantically load-bearing: soundness and
  completeness are stated per known-code label, §3.6).

The machine works over *heap locations*; ``Loc`` and ``Err`` are the
internal answer forms unavailable to source programs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional, Union


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Type:
    def __post_init__(self) -> None:  # pragma: no cover - abstract guard
        if type(self) is Type:
            raise TypeError("Type is abstract")


@dataclass(frozen=True)
class NatType(Type):
    """The base type of numbers.

    The paper calls it ``nat``; following its own SMT encoding (§2 emits
    ``declare-const ... Int``) the semantic domain here is ℤ.
    """

    def __repr__(self) -> str:
        return "nat"


@dataclass(frozen=True)
class FunType(Type):
    dom: Type
    rng: Type

    def __repr__(self) -> str:
        return f"({self.dom!r} -> {self.rng!r})"


NAT = NatType()


def fun(*types: Type) -> Type:
    """Right-associated function type: fun(a, b, c) = a -> (b -> c)."""
    if not types:
        raise ValueError("fun() needs at least one type")
    result = types[-1]
    for t in reversed(types[:-1]):
        result = FunType(t, result)
    return result


# ---------------------------------------------------------------------------
# Labels
# ---------------------------------------------------------------------------

_label_counter = itertools.count()


def fresh_label(prefix: str = "l") -> str:
    """Allocate a globally fresh label (source positions in a real tool)."""
    return f"{prefix}{next(_label_counter)}"


def reset_labels() -> None:
    """Restart the label counter.

    Labels only need to be unique within one program; the batch driver
    resets before each program so reports are byte-stable no matter how
    programs are distributed over worker processes.
    """
    global _label_counter
    _label_counter = itertools.count()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    def __post_init__(self) -> None:  # pragma: no cover - abstract guard
        if type(self) is Expr:
            raise TypeError("Expr is abstract")


@dataclass(frozen=True)
class Num(Expr):
    value: int

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Ref(Expr):
    """Variable reference."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Lam(Expr):
    var: str
    var_type: Type
    body: Expr

    def __repr__(self) -> str:
        return f"(λ ({self.var} : {self.var_type!r}) {self.body!r})"


@dataclass(frozen=True)
class App(Expr):
    fn: Expr
    arg: Expr

    def __repr__(self) -> str:
        return f"({self.fn!r} {self.arg!r})"


@dataclass(frozen=True)
class If(Expr):
    """PCF conditional: the then-branch is taken when the test is nonzero."""

    test: Expr
    then: Expr
    orelse: Expr

    def __repr__(self) -> str:
        return f"(if {self.test!r} {self.then!r} {self.orelse!r})"


@dataclass(frozen=True)
class PrimApp(Expr):
    """Application of a primitive operation, labelled for blame."""

    op: str
    args: tuple[Expr, ...]
    label: str

    def __repr__(self) -> str:
        return f"({self.op} " + " ".join(map(repr, self.args)) + f")^{self.label}"


@dataclass(frozen=True)
class Fix(Expr):
    """Recursion: ``Fix(x, T, e)`` unfolds to ``e[Fix(x,T,e)/x]``."""

    var: str
    var_type: Type
    body: Expr

    def __repr__(self) -> str:
        return f"(μ ({self.var} : {self.var_type!r}) {self.body!r})"


@dataclass(frozen=True)
class Opq(Expr):
    """An opaque value ``•T`` with its source label."""

    type: Type
    label: str

    def __repr__(self) -> str:
        return f"•{self.type!r}^{self.label}"


@dataclass(frozen=True)
class Loc(Expr):
    """A heap location — an internal answer form."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Err(Expr):
    """Error answer blaming label ``label`` for violating ``op``'s
    precondition."""

    label: str
    op: str

    def __repr__(self) -> str:
        return f"err^{self.label}_{self.op}"


Answer = Union[Loc, Err]


# ---------------------------------------------------------------------------
# Constructors with automatic labels
# ---------------------------------------------------------------------------


def opq(t: Type, label: Optional[str] = None) -> Opq:
    return Opq(t, label if label is not None else fresh_label("opq"))


def prim(op: str, *args: Expr, label: Optional[str] = None) -> PrimApp:
    return PrimApp(op, tuple(args), label if label is not None else fresh_label("p"))


def num(n: int) -> Num:
    return Num(n)


def lam(var: str, var_type: Type, body: Expr) -> Lam:
    return Lam(var, var_type, body)


def app(fn: Expr, *args: Expr) -> Expr:
    out = fn
    for a in args:
        out = App(out, a)
    return out


# ---------------------------------------------------------------------------
# Substitution and traversal
# ---------------------------------------------------------------------------


def subst(e: Expr, name: str, replacement: Expr) -> Expr:
    """Capture-avoiding substitution ``e[replacement/name]``.

    Replacements are locations or closed expressions throughout the
    machine, so capture can only occur through shadowing, which the
    binder checks handle.
    """
    if isinstance(e, Ref):
        return replacement if e.name == name else e
    if isinstance(e, (Num, Opq, Loc, Err)):
        return e
    if isinstance(e, Lam):
        if e.var == name:
            return e
        return Lam(e.var, e.var_type, subst(e.body, name, replacement))
    if isinstance(e, Fix):
        if e.var == name:
            return e
        return Fix(e.var, e.var_type, subst(e.body, name, replacement))
    if isinstance(e, App):
        return App(subst(e.fn, name, replacement), subst(e.arg, name, replacement))
    if isinstance(e, If):
        return If(
            subst(e.test, name, replacement),
            subst(e.then, name, replacement),
            subst(e.orelse, name, replacement),
        )
    if isinstance(e, PrimApp):
        return PrimApp(
            e.op, tuple(subst(a, name, replacement) for a in e.args), e.label
        )
    raise TypeError(f"cannot substitute into {e!r}")


def subexprs(e: Expr) -> Iterator[Expr]:
    """All subexpressions, pre-order."""
    yield e
    if isinstance(e, (Lam, Fix)):
        yield from subexprs(e.body)
    elif isinstance(e, App):
        yield from subexprs(e.fn)
        yield from subexprs(e.arg)
    elif isinstance(e, If):
        yield from subexprs(e.test)
        yield from subexprs(e.then)
        yield from subexprs(e.orelse)
    elif isinstance(e, PrimApp):
        for a in e.args:
            yield from subexprs(a)


def free_refs(e: Expr) -> set[str]:
    """Free variable names of ``e``."""
    if isinstance(e, Ref):
        return {e.name}
    if isinstance(e, (Num, Opq, Loc, Err)):
        return set()
    if isinstance(e, (Lam, Fix)):
        return free_refs(e.body) - {e.var}
    if isinstance(e, App):
        return free_refs(e.fn) | free_refs(e.arg)
    if isinstance(e, If):
        return free_refs(e.test) | free_refs(e.then) | free_refs(e.orelse)
    if isinstance(e, PrimApp):
        out: set[str] = set()
        for a in e.args:
            out |= free_refs(a)
        return out
    raise TypeError(f"no free_refs for {e!r}")


def known_labels(e: Expr) -> set[str]:
    """The labels of the *known program portion* — every primitive
    application site in ``e`` (metafunction ``lab`` of Fig. 6, restricted
    to source expressions)."""
    return {s.label for s in subexprs(e) if isinstance(s, PrimApp)}


def opaque_labels(e: Expr) -> set[str]:
    """Labels of the opaque values in ``e`` (the unknowns to solve for)."""
    return {s.label for s in subexprs(e) if isinstance(s, Opq)}

"""Concrete evaluation of (opaque-free) SPCF programs.

Used to *validate* counterexamples (§4.5: "it is necessary to first run
the program with the concrete value set before reporting it as a
counterexample") and as the ground-truth oracle in the soundness
property tests.

The evaluator reuses the symbolic machine: on a program with no opaque
values, every δ-branch is decided concretely, so each state has exactly
one successor and no solver call is ever made.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .heap import SNum, Storeable
from .machine import Machine, inject
from .syntax import Err, Expr, Loc, Opq, subexprs


class Timeout(Exception):
    """Concrete evaluation exhausted its fuel."""


@dataclass(frozen=True)
class ConcreteAnswer:
    """The outcome of a concrete run: a value storeable or an error."""

    value: Optional[Storeable]
    error: Optional[Err]

    @property
    def is_error(self) -> bool:
        return self.error is not None

    def number(self) -> Optional[int]:
        return self.value.value if isinstance(self.value, SNum) else None


def has_opaques(e: Expr) -> bool:
    return any(isinstance(s, Opq) for s in subexprs(e))


def run(program: Expr, *, fuel: int = 200_000) -> ConcreteAnswer:
    """Evaluate a closed, opaque-free program deterministically."""
    if has_opaques(program):
        raise ValueError("concrete evaluation requires an opaque-free program")
    m = Machine()
    state = inject(program)
    for _ in range(fuel):
        succs = m.step(state)
        if succs is None:
            c = state.control
            if isinstance(c, Err):
                return ConcreteAnswer(None, c)
            assert isinstance(c, Loc)
            return ConcreteAnswer(state.heap.get(c), None)
        if len(succs) != 1:  # pragma: no cover - determinism guard
            raise AssertionError(
                "concrete evaluation branched; opaque value leaked in"
            )
        state = succs[0]
    raise Timeout(f"no answer within {fuel} steps")

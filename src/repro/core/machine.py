"""The reduction semantics of SPCF — paper Fig. 2.

States are ⟨expression, heap⟩ pairs.  The step relation is
nondeterministic: δ-branches and the opaque-application rules each yield
several successor states.  The machine is substitution-based, exactly
like the paper's: β-reduction substitutes the argument *location* into
the body, so every value a computation touches lives in the heap where it
can be refined.

The opaque-application rules are the heart of the technique (§3.2):

* ``AppOpq1`` — unknown function, *base-type* argument: the unknown
  becomes a memoising ``case`` mapping, and the result is a fresh opaque.
  Equal future arguments get equal results (completeness!).
* ``AppOpq2`` — unknown function, function argument, *ignores* it:
  becomes a constant function.
* ``AppOpq3`` — unknown function returning a function: *delays* the
  exploration of its argument inside a returned closure.
* ``AppHavoc`` — unknown function *explores* its argument: applies it to
  a fresh opaque and feeds the result to another unknown function.

Together these unroll the "demonic context" of earlier higher-order
symbolic execution incrementally, while remembering enough shape to
reconstruct a counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .delta import delta
from .heap import (
    Heap,
    SCase,
    SLam,
    SNum,
    SOpq,
    current_loc_counter,
    set_loc_counter,
)
from .proof import ProofSystem
from .syntax import (
    App,
    Err,
    Expr,
    Fix,
    FunType,
    If,
    Lam,
    Loc,
    NatType,
    Num,
    Opq,
    PrimApp,
    Ref,
    subst,
)


@dataclass(frozen=True)
class State:
    """⟨E, Σ⟩."""

    control: Expr
    heap: Heap
    # The location-counter value this state was created under.  ``step``
    # rewinds the global ``fresh_loc`` counter to this before reducing,
    # making location names a pure function of the path from the initial
    # state — independent of search order, and hence identical whether
    # the frontier is explored sequentially or sharded across processes.
    # Excluded from fingerprints (which rename locations anyway).
    loc_base: int = 0

    @property
    def is_answer(self) -> bool:
        return isinstance(self.control, (Loc, Err))

    @property
    def is_error(self) -> bool:
        return isinstance(self.control, Err)

    def __repr__(self) -> str:
        return f"⟨{self.control!r}, {self.heap!r}⟩"


class StuckError(Exception):
    """The machine reached a non-answer state with no applicable rule —
    impossible for well-typed programs."""


def inject(program: Expr) -> State:
    """The initial state for a closed program."""
    return State(program, Heap.empty(), current_loc_counter())


def _opq_loc(label: str) -> Loc:
    """The canonical location of the opaque value labelled ``label``.

    Opaque values denote *fixed* unknowns, so re-evaluating the same
    source occurrence must reuse its location (rule Opq's side condition).
    Deriving the location from the label achieves this without threading
    a separate table through the state.
    """
    return Loc(f"o:{label}")


class Machine:
    """The nondeterministic step function, parameterised by a proof system
    (which in turn wraps the first-order solver)."""

    def __init__(self, proof: Optional[ProofSystem] = None) -> None:
        self.proof = proof or ProofSystem()

    # -- public ------------------------------------------------------------

    def step(self, state: State) -> Optional[list[State]]:
        """Successor states, or None when ``state`` is an answer."""
        if state.is_answer:
            return None
        set_loc_counter(state.loc_base)
        succs = self._reduce(state.control, state.heap)
        base = current_loc_counter()
        return [State(e, h, base) for e, h in succs]

    # -- redex search (contextual closure, rule Close) ----------------------

    def _reduce(self, e: Expr, heap: Heap) -> list[tuple[Expr, Heap]]:
        # Value forms allocate (rules Opq and Conc).
        if isinstance(e, Num):
            l, h = heap.alloc(SNum(e.value))
            return [(l, h)]
        if isinstance(e, Lam):
            l, h = heap.alloc(SLam(e))
            return [(l, h)]
        if isinstance(e, Opq):
            l = _opq_loc(e.label)
            if l in heap:
                return [(l, heap)]
            return [(l, heap.set(l, SOpq(e.type)))]
        if isinstance(e, Fix):
            return [(subst(e.body, e.var, e), heap)]
        if isinstance(e, If):
            return self._reduce_in_context(
                e.test,
                heap,
                plug=lambda t: If(t, e.then, e.orelse),
                apply=lambda l, h: self._apply_if(l, e.then, e.orelse, h),
            )
        if isinstance(e, App):
            if not isinstance(e.fn, Loc):
                return self._reduce_in_context(
                    e.fn, heap, plug=lambda f: App(f, e.arg), apply=None
                )
            if not isinstance(e.arg, Loc):
                return self._reduce_in_context(
                    e.arg, heap, plug=lambda a: App(e.fn, a), apply=None
                )
            return self._apply(e.fn, e.arg, heap)
        if isinstance(e, PrimApp):
            for i, a in enumerate(e.args):
                if isinstance(a, Loc):
                    continue
                before, after = e.args[:i], e.args[i + 1 :]
                return self._reduce_in_context(
                    a,
                    heap,
                    plug=lambda x: PrimApp(e.op, before + (x,) + after, e.label),
                    apply=None,
                )
            return self._apply_prim(e, heap)
        if isinstance(e, Ref):
            raise StuckError(f"free variable {e.name} reached the machine")
        raise StuckError(f"no rule for {e!r}")

    def _reduce_in_context(self, sub: Expr, heap: Heap, *, plug, apply):
        """Reduce inside an evaluation context (rules Close and Error)."""
        if isinstance(sub, Err):
            return [(sub, heap)]  # Error: discard the context
        if isinstance(sub, Loc):
            assert apply is not None, "caller must handle finished operands"
            return apply(sub, heap)
        return [(plug(e2), h2) for e2, h2 in self._reduce(sub, heap)]

    # -- rule implementations ------------------------------------------------

    def _apply_if(self, test: Loc, then: Expr, orelse: Expr, heap: Heap):
        """Rules IfTrue / IfFalse: the then-branch runs when the test is
        nonzero (δ's zero? answering 0)."""
        out = []
        for res in delta(self.proof, heap, "zero?", (test,)):
            assert not res.error and isinstance(res.value, SNum)
            if res.value.value == 0:  # zero? is false: test nonzero: then
                out.append((then, res.heap))
            else:
                out.append((orelse, res.heap))
        return out

    def _apply_prim(self, e: PrimApp, heap: Heap):
        """Rule Prim: allocate each δ-result; errors blame ``e.label``."""
        locs = tuple(a for a in e.args if isinstance(a, Loc))
        out: list[tuple[Expr, Heap]] = []
        for res in delta(self.proof, heap, e.op, locs):
            if res.error:
                out.append((Err(e.label, e.op), res.heap))
            else:
                assert res.value is not None
                l, h = res.heap.alloc(res.value)
                out.append((l, h))
        return out

    def _apply(self, fn: Loc, arg: Loc, heap: Heap):
        s = heap.get(fn)
        if isinstance(s, SLam):
            # Rule AppLam: β by substituting the argument location.
            return [(subst(s.lam.body, s.lam.var, arg), heap)]
        if isinstance(s, SCase):
            return self._apply_case(fn, s, arg, heap)
        if isinstance(s, SOpq):
            if not isinstance(s.type, FunType):
                raise StuckError(f"applying opaque non-function {s!r}")
            if isinstance(s.type.dom, NatType):
                return self._app_opq1(fn, s.type, arg, heap)
            return self._app_opq_higher(fn, s.type, arg, heap)
        raise StuckError(f"applying non-function {s!r}")

    def _apply_case(self, fn: Loc, s: SCase, arg: Loc, heap: Heap):
        hit = s.lookup(arg)
        if hit is not None:
            return [(hit, heap)]  # AppCase1: memoised result
        # AppCase2: fresh opaque output, extend the mapping.
        la, h = heap.alloc(SOpq(s.out_type))
        h = h.set(fn, s.extended(arg, la))
        return [(la, h)]

    def _app_opq1(self, fn: Loc, t: FunType, arg: Loc, heap: Heap):
        """AppOpq1: •(nat→T) becomes a one-entry case mapping."""
        la, h = heap.alloc(SOpq(t.rng))
        h = h.set(fn, SCase(t.rng, ((arg, la),)))
        return [(la, h)]

    def _app_opq_higher(self, fn: Loc, t: FunType, arg: Loc, heap: Heap):
        """AppOpq2 / AppOpq3 / AppHavoc for •(T'→T) with T' = T1→T2."""
        dom = t.dom
        assert isinstance(dom, FunType)
        out: list[tuple[Expr, Heap]] = []

        # AppOpq2: constant function λx:T'. La.
        la, h2 = heap.alloc(SOpq(t.rng))
        h2 = h2.set(fn, SLam(Lam("x", dom, la)))
        out.append((la, h2))

        # AppOpq3: delay exploration — only when the range is a function.
        if isinstance(t.rng, FunType):
            t3 = t.rng.dom
            l1, h3 = heap.alloc(SOpq(t))
            wrapper_body = Lam("y", t3, App(App(l1, Ref("x")), Ref("y")))
            h3 = h3.set(fn, SLam(Lam("x", dom, wrapper_body)))
            result = Lam("y", t3, App(App(l1, arg), Ref("y")))
            out.append((result, h3))

        # AppHavoc: explore the argument with a fresh opaque input, feed
        # the output to a fresh unknown continuation.
        l1, hh = heap.alloc(SOpq(dom.dom))
        l2, hh = hh.alloc(SOpq(FunType(dom.rng, t.rng)))
        havoc_body = App(l2, App(Ref("x"), l1))
        hh = hh.set(fn, SLam(Lam("x", dom, havoc_body)))
        out.append((App(l2, App(arg, l1)), hh))

        return out

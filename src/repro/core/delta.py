"""The primitive-operation relation δ — paper Fig. 3.

δ relates ``(Σ, O, L...)`` to results.  It is a *relation*, not a
function: primitives behave nondeterministically on opaque values, and
each branch refines the heap with the assumption taken.  For example
``div`` by an opaque denominator either errors (refining the denominator
to zero) or returns an opaque quotient (refining it nonzero and
annotating the result with ``(≡ L1 / L2)``).

Unlike the strong update ``Σ[L ↦ 0]`` shown in Fig. 3 for the true
branch of ``zero?``, we always *add* a refinement instead of overwriting:
the worked example of §2 keeps both ``x = 0`` and ``x = (100 - L4)`` on
the heap, and dropping previously recorded equalities would lose exactly
the cross-location constraints counterexample construction needs.

The dispatch tables are not written out by hand: SPCF's operator set is
the slice of the primitive registry (``repro.prims``) whose declarations
carry both a ``core_op`` name and an integer-refinement template.  Each
template *kind* (arith / divlike / compare / offset / sign) has one
interpreter below; the template's ``py`` callable supplies the core's
integer semantics (deliberately Euclidean for ``div``/``mod``, diverging
from Racket's truncating ``quotient``/``remainder`` — the registry
declares both semantics, each consumer picks its own).  Tables build
lazily on first δ-call so this module can be imported while the registry
package is still initialising.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .heap import (
    HConst,
    Heap,
    HLoc,
    HOp,
    PEq,
    PLe,
    PLt,
    PNot,
    Pred,
    PZero,
    SNum,
    SOpq,
    Storeable,
)
from .proof import ProofSystem, Verdict
from .syntax import Loc, NAT


@dataclass(frozen=True)
class DeltaResult:
    """One branch of δ: either an error, or a storeable to allocate."""

    heap: Heap
    value: Optional[Storeable] = None
    error: bool = False

    @staticmethod
    def ok(heap: Heap, value: Storeable) -> "DeltaResult":
        return DeltaResult(heap, value=value)

    @staticmethod
    def err(heap: Heap) -> "DeltaResult":
        return DeltaResult(heap, error=True)


def _num(heap: Heap, l: Loc) -> Optional[int]:
    s = heap.get(l)
    return s.value if isinstance(s, SNum) else None


def _refine_subject(heap: Heap, l: Loc, p: Pred) -> Heap:
    """Attach ``p`` to ``l`` if opaque; no-op for concrete subjects (the
    predicate is then already decided and recorded implicitly)."""
    if isinstance(heap.get(l), SOpq):
        return heap.refine(l, p)
    return heap


# ---------------------------------------------------------------------------
# zero?  — the canonical three-way branch
# ---------------------------------------------------------------------------


def delta_zero(proof: ProofSystem, heap: Heap, l: Loc) -> list[DeltaResult]:
    """``zero? L``: 1 when definitely zero, 0 when definitely nonzero,
    both branches (with refinements) when ambiguous."""
    verdict = proof.check(heap, l, PZero())
    if verdict is Verdict.PROVED:
        return [DeltaResult.ok(heap, SNum(1))]
    if verdict is Verdict.REFUTED:
        return [DeltaResult.ok(heap, SNum(0))]
    return [
        DeltaResult.ok(_refine_subject(heap, l, PZero()), SNum(1)),
        DeltaResult.ok(_refine_subject(heap, l, PNot(PZero())), SNum(0)),
    ]


# ---------------------------------------------------------------------------
# Template interpreters, one per Refinement kind
# ---------------------------------------------------------------------------


def _arith(
    op: str, compute: Callable[[int, int], int]
) -> Callable[[ProofSystem, Heap, Loc, Loc], list[DeltaResult]]:
    def handler(
        proof: ProofSystem, heap: Heap, l1: Loc, l2: Loc
    ) -> list[DeltaResult]:
        v1, v2 = _num(heap, l1), _num(heap, l2)
        if v1 is not None and v2 is not None:
            return [DeltaResult.ok(heap, SNum(compute(v1, v2)))]
        term = HOp(op, (HLoc(l1), HLoc(l2)))
        return [DeltaResult.ok(heap, SOpq(NAT, (PEq(term),)))]

    return handler


def _offset(
    op: str,
) -> Callable[[ProofSystem, Heap, Loc], list[DeltaResult]]:
    """``add1``/``sub1``: the ``±1`` special case of ``_arith``."""

    def handler(proof: ProofSystem, heap: Heap, l: Loc) -> list[DeltaResult]:
        v = _num(heap, l)
        if v is not None:
            return [DeltaResult.ok(heap, SNum(v + 1 if op == "+" else v - 1))]
        term = HOp(op, (HLoc(l), HConst(1)))
        return [DeltaResult.ok(heap, SOpq(NAT, (PEq(term),)))]

    return handler


def _divlike(
    op: str, compute: Callable[[int, int], int]
) -> Callable[[ProofSystem, Heap, Loc, Loc], list[DeltaResult]]:
    def handler(
        proof: ProofSystem, heap: Heap, l1: Loc, l2: Loc
    ) -> list[DeltaResult]:
        v1, v2 = _num(heap, l1), _num(heap, l2)
        if v2 is not None:
            if v2 == 0:
                return [DeltaResult.err(heap)]
            if v1 is not None:
                return [DeltaResult.ok(heap, SNum(compute(v1, v2)))]
            term = HOp(op, (HLoc(l1), HLoc(l2)))
            return [DeltaResult.ok(heap, SOpq(NAT, (PEq(term),)))]
        # Opaque denominator: consult zero?-ness.
        verdict = proof.check(heap, l2, PZero())
        if verdict is Verdict.PROVED:
            return [DeltaResult.err(heap)]
        term = HOp(op, (HLoc(l1), HLoc(l2)))
        ok_value = SOpq(NAT, (PEq(term),))
        if verdict is Verdict.REFUTED:
            return [DeltaResult.ok(heap, ok_value)]
        return [
            DeltaResult.err(_refine_subject(heap, l2, PZero())),
            DeltaResult.ok(
                _refine_subject(heap, l2, PNot(PZero())), ok_value
            ),
        ]

    return handler


# ---------------------------------------------------------------------------
# Comparisons (PCF booleans: 1 true / 0 false)
# ---------------------------------------------------------------------------


def _flip_for_rhs(op: str, v1: int) -> Pred:
    """The predicate to attach to the *right* operand when only it is
    opaque: ``v1 op x`` rewritten with ``x`` as subject."""
    if op == "=?":
        return PEq(HConst(v1))
    if op == "<?":  # v1 < x  ⇔  ¬(x <= v1)
        return PNot(PLe(HConst(v1)))
    if op == "<=?":  # v1 <= x  ⇔  ¬(x < v1)
        return PNot(PLt(HConst(v1)))
    raise ValueError(op)


def _pred_for_lhs(op: str, l2: Loc) -> Pred:
    if op == "=?":
        return PEq(HLoc(l2))
    if op == "<?":
        return PLt(HLoc(l2))
    if op == "<=?":
        return PLe(HLoc(l2))
    raise ValueError(op)


def _compare(
    op: str, compute: Callable[[int, int], bool]
) -> Callable[[ProofSystem, Heap, Loc, Loc], list[DeltaResult]]:
    def handler(
        proof: ProofSystem, heap: Heap, l1: Loc, l2: Loc
    ) -> list[DeltaResult]:
        v1, v2 = _num(heap, l1), _num(heap, l2)
        if v1 is not None and v2 is not None:
            return [DeltaResult.ok(heap, SNum(1 if compute(v1, v2) else 0))]
        if isinstance(heap.get(l1), SOpq):
            subject, pred = l1, _pred_for_lhs(op, l2)
        else:
            assert v1 is not None
            subject, pred = l2, _flip_for_rhs(op, v1)
        verdict = proof.check(heap, subject, pred)
        if verdict is Verdict.PROVED:
            return [DeltaResult.ok(heap, SNum(1))]
        if verdict is Verdict.REFUTED:
            return [DeltaResult.ok(heap, SNum(0))]
        return [
            DeltaResult.ok(_refine_subject(heap, subject, pred), SNum(1)),
            DeltaResult.ok(
                _refine_subject(heap, subject, PNot(pred)), SNum(0)
            ),
        ]

    return handler


# ---------------------------------------------------------------------------
# Dispatch tables, derived from the registry
# ---------------------------------------------------------------------------

_TABLES: Optional[tuple[dict, dict]] = None


def _tables() -> tuple[dict, dict]:
    """``(unary, binary)`` handler tables, built from every registry
    declaration that names a ``core_op`` and carries a refinement
    template.  Lazy: the registry package imports parts of ``core``
    while initialising, so the table cannot be built at import time."""
    global _TABLES
    if _TABLES is None:
        from ..prims import REGISTRY

        unary: dict[str, Callable] = {}
        binary: dict[str, Callable] = {}
        for s in REGISTRY.values():
            r = s.refine
            if s.core_op is None or r is None:
                continue
            if r.kind == "arith":
                binary[s.core_op] = _arith(s.core_op, r.py)
            elif r.kind == "divlike":
                binary[s.core_op] = _divlike(s.core_op, r.py)
            elif r.kind == "compare":
                binary[s.core_op] = _compare(s.core_op, r.py)
            elif r.kind == "offset":
                unary[s.core_op] = _offset(r.op)
            elif r.kind == "sign":
                unary[s.core_op] = delta_zero
        _TABLES = (unary, binary)
    return _TABLES


def delta(
    proof: ProofSystem, heap: Heap, op: str, locs: tuple[Loc, ...]
) -> list[DeltaResult]:
    """All δ-branches for ``op`` applied to ``locs`` under ``heap``."""
    unary, binary = _tables()
    if op in unary:
        if len(locs) != 1:
            raise ValueError(f"{op} expects 1 argument")
        return unary[op](proof, heap, locs[0])
    if op in binary:
        if len(locs) != 2:
            raise ValueError(f"{op} expects 2 arguments")
        return binary[op](proof, heap, locs[0], locs[1])
    raise ValueError(f"unknown primitive {op}")

"""Simple type checker for SPCF.

The paper omits the (straightforward) typing rules and assumes all
programs are well-typed; we implement them because the opaque-application
rules dispatch on static types (AppOpq1 needs a ``nat`` domain, AppOpq3 a
function range), so ill-typed inputs would silently derail the machine.
"""

from __future__ import annotations


from .syntax import (
    App,
    Err,
    Expr,
    Fix,
    FunType,
    If,
    Lam,
    Loc,
    NAT,
    Num,
    Opq,
    PrimApp,
    Ref,
    Type,
)


class TypeError_(Exception):
    """An SPCF type error (named to avoid clobbering the builtin)."""


# op name -> (argument types, result type)
PRIM_SIGS: dict[str, tuple[tuple[Type, ...], Type]] = {
    "zero?": ((NAT,), NAT),
    "add1": ((NAT,), NAT),
    "sub1": ((NAT,), NAT),
    "+": ((NAT, NAT), NAT),
    "-": ((NAT, NAT), NAT),
    "*": ((NAT, NAT), NAT),
    "div": ((NAT, NAT), NAT),
    "mod": ((NAT, NAT), NAT),
    "=?": ((NAT, NAT), NAT),
    "<?": ((NAT, NAT), NAT),
    "<=?": ((NAT, NAT), NAT),
}


def type_of(e: Expr, env: dict[str, Type] | None = None) -> Type:
    """Infer the type of ``e`` under ``env``; raises :class:`TypeError_`."""
    env = env or {}
    if isinstance(e, Num):
        return NAT
    if isinstance(e, Ref):
        if e.name not in env:
            raise TypeError_(f"unbound variable {e.name}")
        return env[e.name]
    if isinstance(e, Opq):
        return e.type
    if isinstance(e, Lam):
        body = type_of(e.body, {**env, e.var: e.var_type})
        return FunType(e.var_type, body)
    if isinstance(e, Fix):
        body = type_of(e.body, {**env, e.var: e.var_type})
        if body != e.var_type:
            raise TypeError_(
                f"fix body has type {body!r}, annotation says {e.var_type!r}"
            )
        return e.var_type
    if isinstance(e, App):
        fn = type_of(e.fn, env)
        arg = type_of(e.arg, env)
        if not isinstance(fn, FunType):
            raise TypeError_(f"applying non-function of type {fn!r}")
        if fn.dom != arg:
            raise TypeError_(
                f"argument type {arg!r} does not match domain {fn.dom!r}"
            )
        return fn.rng
    if isinstance(e, If):
        test = type_of(e.test, env)
        if test != NAT:
            raise TypeError_(f"if-test must be nat, got {test!r}")
        then = type_of(e.then, env)
        orelse = type_of(e.orelse, env)
        if then != orelse:
            raise TypeError_(
                f"if-branches disagree: {then!r} vs {orelse!r}"
            )
        return then
    if isinstance(e, PrimApp):
        if e.op not in PRIM_SIGS:
            raise TypeError_(f"unknown primitive {e.op}")
        arg_types, result = PRIM_SIGS[e.op]
        if len(e.args) != len(arg_types):
            raise TypeError_(
                f"{e.op} expects {len(arg_types)} args, got {len(e.args)}"
            )
        for i, (a, want) in enumerate(zip(e.args, arg_types)):
            got = type_of(a, env)
            if got != want:
                raise TypeError_(
                    f"{e.op} argument {i} has type {got!r}, expected {want!r}"
                )
        return result
    if isinstance(e, (Loc, Err)):
        raise TypeError_("internal answer forms are not typeable source syntax")
    raise TypeError_(f"cannot type {e!r}")


def check_program(e: Expr) -> Type:
    """Type-check a closed source program."""
    return type_of(e, {})

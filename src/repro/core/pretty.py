"""Pretty-printing of SPCF terms, heaps and counterexamples.

The dataclass ``repr``s are debugging-grade; this module produces the
compact surface syntax used in the paper's examples and in the tool's
reports (``fun f → (f (fun n → 100) 0)``).
"""

from __future__ import annotations

from .heap import (
    Heap,
    HConst,
    HLoc,
    HOp,
    HTerm,
    PEq,
    PLe,
    PLt,
    PNot,
    Pred,
    PZero,
    SCase,
    SLam,
    SNum,
    SOpq,
    Storeable,
)
from .syntax import (
    App,
    Err,
    Expr,
    Fix,
    FunType,
    If,
    Lam,
    Loc,
    NatType,
    Num,
    Opq,
    PrimApp,
    Ref,
    Type,
)


def pp_type(t: Type) -> str:
    if isinstance(t, NatType):
        return "nat"
    assert isinstance(t, FunType)
    dom = pp_type(t.dom)
    if isinstance(t.dom, FunType):
        dom = f"({dom})"
    return f"{dom} → {pp_type(t.rng)}"


def pp(e: Expr) -> str:
    """Surface-syntax rendering of an expression."""
    if isinstance(e, Num):
        return str(e.value)
    if isinstance(e, Ref):
        return e.name
    if isinstance(e, Loc):
        return e.name
    if isinstance(e, Err):
        return f"error:{e.op}@{e.label}"
    if isinstance(e, Opq):
        return f"•[{pp_type(e.type)}]"
    if isinstance(e, Lam):
        return f"(fun {e.var} → {pp(e.body)})"
    if isinstance(e, Fix):
        return f"(fix {e.var} → {pp(e.body)})"
    if isinstance(e, App):
        # Flatten curried application chains.
        parts = []
        cur: Expr = e
        while isinstance(cur, App):
            parts.append(cur.arg)
            cur = cur.fn
        parts.append(cur)
        parts.reverse()
        return "(" + " ".join(pp(p) for p in parts) + ")"
    if isinstance(e, If):
        return f"(if {pp(e.test)} {pp(e.then)} {pp(e.orelse)})"
    if isinstance(e, PrimApp):
        return "(" + e.op + " " + " ".join(pp(a) for a in e.args) + ")"
    raise TypeError(f"cannot pretty-print {e!r}")


def pp_hterm(t: HTerm) -> str:
    if isinstance(t, HConst):
        return str(t.value)
    if isinstance(t, HLoc):
        return t.loc.name
    assert isinstance(t, HOp)
    return "(" + t.op + " " + " ".join(pp_hterm(a) for a in t.args) + ")"


def pp_pred(p: Pred) -> str:
    if isinstance(p, PZero):
        return "zero?"
    if isinstance(p, PEq):
        return f"(= x {pp_hterm(p.term)})"
    if isinstance(p, PLt):
        return f"(< x {pp_hterm(p.term)})"
    if isinstance(p, PLe):
        return f"(<= x {pp_hterm(p.term)})"
    assert isinstance(p, PNot)
    return f"(not {pp_pred(p.arg)})"


def pp_storeable(s: Storeable) -> str:
    if isinstance(s, SNum):
        return str(s.value)
    if isinstance(s, SLam):
        return pp(s.lam)
    if isinstance(s, SOpq):
        if not s.refinements:
            return f"•[{pp_type(s.type)}]"
        preds = ", ".join(pp_pred(p) for p in s.refinements)
        return f"•{{{pp_type(s.type)}, {preds}}}"
    assert isinstance(s, SCase)
    entries = " ".join(f"[{k.name} ↦ {v.name}]" for k, v in s.mapping)
    return f"(case {entries})"


def pp_heap(heap: Heap) -> str:
    lines = [f"  {l.name} ↦ {pp_storeable(s)}" for l, s in heap.items()]
    return "[\n" + "\n".join(lines) + "\n]"


def pp_counterexample(cex) -> str:
    """Render a counterexample as the paper does: one binding per opaque."""
    lines = []
    for label, expr in cex.bindings.items():
        lines.append(f"• [{label}] = {pp(expr)}")
    status = {True: "validated", False: "NOT validated", None: "unchecked"}[
        cex.validated
    ]
    lines.append(f"breaks with {cex.err.op} at {cex.err.label} ({status})")
    return "\n".join(lines)

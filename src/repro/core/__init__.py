"""Symbolic PCF — the paper's §3 core model.

High-level API:

>>> from repro.core import *
>>> # f = λg:nat→nat. λn:nat. 1 / (100 - (g n)), applied to an unknown
>>> f = lam("g", fun(NAT, NAT), lam("n", NAT,
...         prim("div", Num(1), prim("-", Num(100), app(Ref("g"), Ref("n"))))))
>>> program = app(opq(fun(fun(NAT, NAT), NAT, NAT)), f)   # (• f)
>>> cex = find_counterexample(program)
>>> cex.validated
True
"""

from __future__ import annotations

from typing import Optional

from .concrete import ConcreteAnswer, Timeout, has_opaques, run
from .counterexample import (
    Counterexample,
    check_counterexample,
    construct,
    default_value,
    instantiate,
)
from .delta import DeltaResult, delta
from .heap import (
    Heap,
    HConst,
    HLoc,
    HOp,
    PEq,
    PLe,
    PLt,
    PNot,
    Pred,
    PZero,
    SCase,
    SLam,
    SNum,
    SOpq,
    fresh_loc,
)
from .machine import Machine, State, StuckError, inject
from .pretty import pp, pp_counterexample, pp_heap, pp_type
from .proof import ProofSystem, Verdict
from .search import SearchResult, SearchStats, explore, find_errors, first_error
from .syntax import (
    App,
    Err,
    Expr,
    Fix,
    FunType,
    If,
    Lam,
    Loc,
    NAT,
    NatType,
    Num,
    Opq,
    PrimApp,
    Ref,
    Type,
    app,
    fresh_label,
    fun,
    known_labels,
    lam,
    num,
    opaque_labels,
    opq,
    prim,
    subst,
)
from .translate import translate_heap
from .typecheck import PRIM_SIGS, TypeError_, check_program

__all__ = [
    # syntax
    "App", "Err", "Expr", "Fix", "FunType", "If", "Lam", "Loc", "NAT",
    "NatType", "Num", "Opq", "PrimApp", "Ref", "Type", "app", "fresh_label",
    "fun", "known_labels", "lam", "num", "opaque_labels", "opq", "prim",
    "subst",
    # typing
    "PRIM_SIGS", "TypeError_", "check_program",
    # heap
    "Heap", "HConst", "HLoc", "HOp", "PEq", "PLe", "PLt", "PNot", "Pred",
    "PZero", "SCase", "SLam", "SNum", "SOpq", "fresh_loc",
    # semantics
    "DeltaResult", "delta", "Machine", "State", "StuckError", "inject",
    "ProofSystem", "Verdict", "translate_heap",
    # search & counterexamples
    "SearchResult", "SearchStats", "explore", "find_errors", "first_error",
    "Counterexample", "check_counterexample", "construct", "default_value",
    "instantiate",
    # concrete evaluation
    "ConcreteAnswer", "Timeout", "has_opaques", "run",
    # pretty printing
    "pp", "pp_counterexample", "pp_heap", "pp_type",
    # driver
    "find_counterexample",
]


def find_counterexample(
    program: Expr,
    *,
    max_states: int = 50_000,
    mode: str = "implications",
    validate: bool = True,
) -> Optional[Counterexample]:
    """End-to-end driver: symbolically execute ``program``, stop at the
    first error (BFS order), and reconstruct a concrete counterexample.

    Returns None when no error is reachable within the state budget or
    the solver cannot model the error path.
    """
    machine = Machine()
    for result in find_errors(program, machine=machine, max_states=max_states):
        cex = construct(
            program, result.state, mode=mode, validate=validate
        )
        if cex is not None:
            return cex
    return None

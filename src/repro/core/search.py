"""Exploration of the nondeterministic transition system.

The tool "finds bugs by performing a simple breadth-first search on the
execution graph, then stops and reports on the first error encountered"
(§5.3).  We expose the whole frontier as a generator so callers can
enumerate *all* errors (the completeness experiments need every seeded
bug) or stop at the first.

The loop itself lives in the shared :mod:`repro.search` kernel: the
frontier discipline is pluggable (``strategy`` — bfs / dfs / depth) and
redundant states are pruned against canonical fingerprints
(``memo`` — see ``search.fingerprint``), which is what keeps the search
affordable as programs grow.  ``memo=False`` restores the exact
pre-kernel behaviour (every state explored once per path reaching it).

No abstraction/widening is performed (§4.5): for counterexample
generation on erroneous programs the concrete-ish search terminates at
the error, and correct programs in the corpus terminate on their own.
A step budget bounds runaway executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from .machine import Machine, State, inject
from .syntax import Err, Expr


@dataclass
class SearchStats:
    states_explored: int = 0
    answers: int = 0
    errors: int = 0
    pruned: int = 0  # states dropped by fingerprint memoisation
    chained: int = 0  # deterministic micro-steps folded into macro states
    truncated: bool = False
    # Sharded-search extras (see repro.search.parallel); scheduling-
    # dependent, reported as volatile fields.
    shards: int = 1
    stolen_tasks: int = 0
    frontier_exchanges: int = 0
    shard_states: tuple = ()
    # Bytecode-compilation extras (see repro.compile); all zero on
    # interpreted runs.  ``dispatch_steps`` counts executed micro-steps
    # in the dispatch loop — deterministic for a given configuration.
    compiled_units: int = 0
    compile_ms: float = 0.0
    dispatch_steps: int = 0


@dataclass
class SearchResult:
    """A final state reached by the search."""

    state: State

    @property
    def is_error(self) -> bool:
        return isinstance(self.state.control, Err)

    @property
    def error(self) -> Optional[Err]:
        c = self.state.control
        return c if isinstance(c, Err) else None


def explore(
    program: Expr,
    *,
    machine: Optional[Machine] = None,
    max_states: int = 50_000,
    stats: Optional[SearchStats] = None,
    strategy: str = "bfs",
    memo: bool = True,
    shards: int = 1,
    compiled: bool = False,
    compile_cache=None,
) -> Iterator[SearchResult]:
    """Search over ⟨E, Σ⟩ states, yielding answers (locations and
    errors) in ``strategy`` order.  ``shards > 1`` partitions the bfs
    frontier across forked worker processes (``repro.search.parallel``)
    with byte-identical output; it requires memoisation (states are
    routed by fingerprint) and falls back to the sequential kernel for
    other strategies or where forking is unavailable.  ``compiled``
    lowers the program once (``repro.compile``) and expands states with
    the fused dispatch loop instead of the step-at-a-time machine —
    byte-identical results, fewer interpreter overheads; an optional
    ``compile_cache`` (``repro.compile.CompiledUnitCache``) reuses the
    lowered units across runs of the same program digest."""
    # Imported lazily: repro.search.fingerprint imports repro.core at
    # module level, so a module-level import here would be circular.
    from ..search import CoreFingerprinter, SearchKernel, ShardedSearch

    m = machine or Machine()
    st = stats if stats is not None else SearchStats()
    expander = None
    if compiled:
        from ..compile import CoreExecutor

        expander = CoreExecutor(
            m, program, stats=st, cache=compile_cache
        ).expand
    if shards > 1 and strategy == "bfs" and memo:
        proof = m.proof
        kernel = ShardedSearch(
            m.step,
            shards=shards,
            fingerprint=CoreFingerprinter(),
            max_states=max_states,
            enter=proof.note_path,
            stats=st,
            expander=expander,
            # Workers report the proof system's deterministic counters
            # per expanded state; the parent replays them in global bfs
            # order so the caller's proof object shows sequential counts.
            # ``dispatch_steps`` rides along: each worker's executor
            # accumulates into its forked stats copy, and the replay
            # makes the parent's count the sequential prefix sum.
            counter_probe=lambda: (
                proof.queries, proof.solver_queries, st.dispatch_steps,
            ),
            counter_sink=lambda c: (
                setattr(proof, "queries", c[0]),
                setattr(proof, "solver_queries", c[1]),
                setattr(st, "dispatch_steps", c[2]),
            ),
        )
    else:
        kernel = SearchKernel(
            m.step,
            strategy=strategy,
            fingerprint=CoreFingerprinter() if memo else None,
            max_states=max_states,
            expander=expander,
            enter=m.proof.note_path,  # per-path solver context follows the search
            stats=st,
        )
    for state in kernel.run(inject(program)):
        if state.is_error:
            st.errors += 1
        yield SearchResult(state)


def find_errors(
    program: Expr,
    *,
    machine: Optional[Machine] = None,
    max_states: int = 50_000,
    stats: Optional[SearchStats] = None,
    strategy: str = "bfs",
    memo: bool = True,
    shards: int = 1,
    compiled: bool = False,
    compile_cache=None,
) -> Iterator[SearchResult]:
    """Yield only the error answers reachable from ``program``."""
    for r in explore(
        program, machine=machine, max_states=max_states, stats=stats,
        strategy=strategy, memo=memo, shards=shards, compiled=compiled,
        compile_cache=compile_cache,
    ):
        if r.is_error:
            yield r


def first_error(
    program: Expr,
    *,
    machine: Optional[Machine] = None,
    max_states: int = 50_000,
) -> Optional[SearchResult]:
    """The first error found in BFS order, or None."""
    return next(iter(find_errors(program, machine=machine, max_states=max_states)), None)

"""Exploration of the nondeterministic transition system.

The tool "finds bugs by performing a simple breadth-first search on the
execution graph, then stops and reports on the first error encountered"
(§5.3).  We expose the whole frontier as a generator so callers can
enumerate *all* errors (the completeness experiments need every seeded
bug) or stop at the first.

No abstraction/widening is performed (§4.5): for counterexample
generation on erroneous programs the concrete-ish search terminates at
the error, and correct programs in the corpus terminate on their own.
A step budget bounds runaway executions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator, Optional

from .machine import Machine, State, inject
from .syntax import Err, Expr


@dataclass
class SearchStats:
    states_explored: int = 0
    answers: int = 0
    errors: int = 0
    truncated: bool = False


@dataclass
class SearchResult:
    """A final state reached by the search."""

    state: State

    @property
    def is_error(self) -> bool:
        return isinstance(self.state.control, Err)

    @property
    def error(self) -> Optional[Err]:
        c = self.state.control
        return c if isinstance(c, Err) else None


def explore(
    program: Expr,
    *,
    machine: Optional[Machine] = None,
    max_states: int = 50_000,
    stats: Optional[SearchStats] = None,
) -> Iterator[SearchResult]:
    """BFS over ⟨E, Σ⟩ states, yielding answers (locations and errors)."""
    m = machine or Machine()
    st = stats if stats is not None else SearchStats()
    frontier: deque[State] = deque([inject(program)])
    while frontier:
        if st.states_explored >= max_states:
            st.truncated = True
            return
        state = frontier.popleft()
        st.states_explored += 1
        succs = m.step(state)
        if succs is None:
            st.answers += 1
            if state.is_error:
                st.errors += 1
            yield SearchResult(state)
            continue
        frontier.extend(succs)


def find_errors(
    program: Expr,
    *,
    machine: Optional[Machine] = None,
    max_states: int = 50_000,
    stats: Optional[SearchStats] = None,
) -> Iterator[SearchResult]:
    """Yield only the error answers reachable from ``program``."""
    for r in explore(
        program, machine=machine, max_states=max_states, stats=stats
    ):
        if r.is_error:
            yield r


def first_error(
    program: Expr,
    *,
    machine: Optional[Machine] = None,
    max_states: int = 50_000,
) -> Optional[SearchResult]:
    """The first error found in BFS order, or None."""
    return next(iter(find_errors(program, machine=machine, max_states=max_states)), None)

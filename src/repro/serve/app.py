"""The HTTP/JSON face of ``repro serve``.

A stdlib-only server (``http.server.ThreadingHTTPServer`` — handler
threads do I/O and store reads; verification always happens in worker
*processes*, see :mod:`repro.serve.workers`) over a shared persistent
store directory.  Endpoints (full reference: docs/SERVER.md):

* ``POST /v1/verify`` — submit a program.  When every verification
  unit of the request is already in the verdict store, the job is
  answered *synchronously* from the store (``warm: true`` — a pure
  replay, no worker round-trip, byte-identical rows to a batch run);
  otherwise the job is queued and the response carries its id;
* ``GET /v1/jobs/<id>`` — job status + (once done) its
  ``repro-bench/v8`` result rows; ``GET /v1/jobs`` lists summaries;
* ``GET /v1/results/<digest>`` — stored verdict entries by program
  digest (or entry-hash prefix), straight from the store;
* ``GET /v1/healthz`` — liveness (503 once every worker is gone);
* ``GET /v1/stats`` — queue depth, worker liveness, store economy.

Graceful drain: SIGTERM (or SIGINT) stops accepting requests, lets
in-flight jobs finish, flushes solver buffers, and leaves still-queued
jobs persisted for the next server instance to recover.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..driver.backends import RunConfig
from ..driver.runner import expand_backends
from ..store import get_store, try_replay
from ..store.solver import flush_all_stores
from .protocol import (
    API_VERSION,
    MAX_SOURCE_BYTES,
    ProtocolError,
    job_summary,
    job_view,
    parse_verify_request,
)
from .queue import JobQueue
from .workers import WorkerPool, job_run_config

#: Smallest accepted ``/v1/results/<digest>`` prefix (hex chars).
MIN_DIGEST_PREFIX = 8


class ServeApp:
    """Everything behind the HTTP handler: queue, pool, store, stats."""

    def __init__(
        self,
        *,
        store_root: str,
        base_config: dict,
        workers: int = 2,
    ) -> None:
        self.store_root = store_root
        os.makedirs(store_root, exist_ok=True)
        self.base_config = dict(base_config)
        self.store = get_store(store_root)
        self.queue = JobQueue(os.path.join(store_root, "jobs"))
        self.recovered = self.queue.recover()
        self.pool = WorkerPool(
            self.queue,
            size=workers,
            base_config=self.base_config,
            store_root=store_root,
        )
        self.started = time.time()
        self.warm_answers = 0
        self._warm_lock = threading.Lock()

    def start(self) -> None:
        self.pool.start()

    # -- request handling ------------------------------------------------

    def submit(self, body) -> tuple[dict, bool]:
        """Validate and submit a verify request.  Returns ``(job_view,
        warm)`` — warm requests are answered synchronously."""
        request = parse_verify_request(body)
        warm_rows = self._replay_all(request)
        job = self.queue.submit(request, warm_rows=warm_rows)
        if warm_rows is not None:
            with self._warm_lock:
                self.warm_answers += 1
        return job_view(job), warm_rows is not None

    def _replay_all(self, request: dict) -> Optional[list]:
        """Rows for the whole request purely from the store, or None.

        The config is resolved exactly as a worker would resolve it
        (``job_run_config``), so the store keys probed here are the
        keys a recompute would write — warm means *actually* warm."""
        cfg = RunConfig(**job_run_config(
            self.base_config, request["config"], self.store_root
        ))
        rows = []
        for engine in expand_backends(request["backend"]):
            row = try_replay(
                request["source"],
                name=request["name"],
                kind=request["kind"],
                config=cfg,
                backend=engine,
            )
            if row is None:
                return None
            rows.append(asdict(row))
        return rows

    def job(self, job_id: str) -> Optional[dict]:
        job = self.queue.get(job_id)
        return None if job is None else job_view(job)

    def job_list(self) -> dict:
        return {
            "api": API_VERSION,
            "jobs": [job_summary(j) for j in self.queue.jobs()],
        }

    def results_for(self, digest: str) -> dict:
        """Stored verdict entries whose program digest — or entry-hash
        file name — starts with ``digest``.  Resolved through the
        store's digest index sidecar (``verdicts.index.jsonl``), so only
        the matching entry files are opened; the entry files stay the
        source of truth and the sidecar is rebuilt from them whenever it
        is missing, corrupt, or stale."""
        if len(digest) < MIN_DIGEST_PREFIX or not all(
            c in "0123456789abcdef" for c in digest
        ):
            raise ProtocolError(
                f"digest must be >= {MIN_DIGEST_PREFIX} hex characters"
            )
        matches = []
        for path in self.store.paths_for_digest(digest):
            base = os.path.basename(path)[: -len(".json")]
            try:
                with open(path, encoding="utf-8") as fh:
                    entry = json.load(fh)
                key = entry["key"]
                result = entry["result"]
            except (OSError, json.JSONDecodeError, KeyError, TypeError):
                continue
            matches.append({
                "entry": base,
                "key": key,
                "name": entry.get("name"),
                "kind": entry.get("kind"),
                "created": entry.get("created"),
                "result": result,
            })
        return {"api": API_VERSION, "digest": digest, "matches": matches}

    # -- health ----------------------------------------------------------

    def healthz(self) -> tuple[int, dict]:
        pool = self.pool.stats()
        ok = pool["alive"] > 0
        return (200 if ok else 503), {
            "api": API_VERSION,
            "ok": ok,
            "workers_alive": pool["alive"],
            "queue_depth": self.queue.depth(),
        }

    def stats(self) -> dict:
        store_hits = store_misses = 0
        for j in self.queue.jobs():
            for row in j.rows or []:
                store_hits += row.get("store_hits", 0)
                store_misses += row.get("store_misses", 0)
        lookups = store_hits + store_misses
        return {
            "api": API_VERSION,
            "uptime_s": round(time.time() - self.started, 3),
            "store_root": self.store_root,
            "queue": self.queue.counts(),
            "queue_depth": self.queue.depth(),
            "workers": self.pool.stats(),
            "warm_answers": self.warm_answers,
            "recovered_jobs": self.recovered,
            "store": {
                "unit_hits": store_hits,
                "unit_misses": store_misses,
                "hit_rate": (
                    round(store_hits / lookups, 4) if lookups else None
                ),
            },
        }


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON routing over one :class:`ServeApp` (set per server)."""

    app: ServeApp  # installed by make_server
    quiet = True
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------

    def log_message(self, fmt, *args):  # noqa: A003 — stdlib signature
        if not self.quiet:
            super().log_message(fmt, *args)

    def _json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._json(code, {"api": API_VERSION, "error": message})

    def _read_body(self):
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise ProtocolError("invalid Content-Length") from None
        if length <= 0:
            raise ProtocolError("request body required")
        if length > 2 * MAX_SOURCE_BYTES:
            raise ProtocolError("request body too large")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"invalid JSON body: {exc}") from None

    # -- routes ----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        if self.path.rstrip("/") != "/v1/verify":
            self._error(404, f"no such endpoint: POST {self.path}")
            return
        try:
            view, warm = self.app.submit(self._read_body())
        except ProtocolError as exc:
            self._error(400, str(exc))
            return
        except Exception as exc:  # noqa: BLE001 — a 500 beats a hang
            self._error(500, f"{type(exc).__name__}: {exc}")
            return
        self._json(200 if warm else 202, {"api": API_VERSION, "job": view})

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/v1/healthz":
                code, payload = self.app.healthz()
                self._json(code, payload)
            elif path == "/v1/stats":
                self._json(200, self.app.stats())
            elif path == "/v1/jobs":
                self._json(200, self.app.job_list())
            elif path.startswith("/v1/jobs/"):
                view = self.app.job(path[len("/v1/jobs/"):])
                if view is None:
                    self._error(404, "no such job")
                else:
                    self._json(200, {"api": API_VERSION, "job": view})
            elif path.startswith("/v1/results/"):
                try:
                    self._json(
                        200, self.app.results_for(path[len("/v1/results/"):])
                    )
                except ProtocolError as exc:
                    self._error(400, str(exc))
            else:
                self._error(404, f"no such endpoint: GET {path}")
        except Exception as exc:  # noqa: BLE001 — a 500 beats a hang
            self._error(500, f"{type(exc).__name__}: {exc}")


def make_server(
    app: ServeApp, host: str = "127.0.0.1", port: int = 0,
    *, quiet: bool = True,
) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server bound to ``host:port`` (port 0 for
    an ephemeral port — ``server.server_address`` has the real one)."""
    handler = type("_BoundHandler", (_Handler,), {"app": app, "quiet": quiet})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def run_serve(
    *,
    host: str,
    port: int,
    workers: int,
    store_root: str,
    base_config: dict,
    drain_timeout_s: float = 60.0,
    quiet: bool = False,
) -> int:
    """The ``repro serve`` entry point: start the pool, serve until
    SIGTERM/SIGINT, drain gracefully, exit 0."""
    app = ServeApp(
        store_root=store_root, base_config=base_config, workers=workers
    )
    server = make_server(app, host, port, quiet=quiet)
    app.start()

    def _shutdown(signum, frame):
        # serve_forever() must be stopped from another thread (it joins
        # its own poll loop); the handler only kicks that off.
        threading.Thread(target=server.shutdown, daemon=True).start()

    old_term = signal.signal(signal.SIGTERM, _shutdown)
    old_int = signal.signal(signal.SIGINT, _shutdown)
    bound_host, bound_port = server.server_address[:2]
    print(
        f"repro serve: listening on http://{bound_host}:{bound_port} "
        f"({workers} workers, store {store_root!r}, "
        f"{app.recovered['recovered']} jobs recovered)",
        flush=True,
    )
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        signal.signal(signal.SIGTERM, old_term)
        signal.signal(signal.SIGINT, old_int)
        server.server_close()
        print("repro serve: draining workers…", flush=True)
        clean = app.pool.drain(drain_timeout_s)
        flush_all_stores()
        depth = app.queue.depth()
        print(
            f"repro serve: drained ({'clean' if clean else 'escalated'}); "
            f"{depth} queued job(s) left persisted", flush=True,
        )
    return 0

"""``repro serve`` — a long-lived verification service over the store.

The serving layer the ROADMAP's verification-as-a-service item calls
for: an HTTP/JSON API (:mod:`repro.serve.app`), a crash-safe persistent
job queue (:mod:`repro.serve.queue`) and a process-based worker pool
(:mod:`repro.serve.workers`) that reuses the batch runner as a library
(:func:`repro.driver.runner.run_job`), all sharing one content-
addressed ``--store`` directory — so a re-submitted or slightly-edited
program is a store lookup (or a per-module partial recompute), not a
recompute.  Wire protocol: :mod:`repro.serve.protocol`; operator
reference: docs/SERVER.md.
"""

from .app import ServeApp, make_server, run_serve
from .protocol import (
    API_VERSION,
    JOB_DONE,
    JOB_QUEUED,
    JOB_RUNNING,
    ProtocolError,
    job_view,
    parse_verify_request,
)
from .queue import MAX_ATTEMPTS, Job, JobQueue
from .workers import WorkerPool, job_run_config, worker_main

__all__ = [
    "API_VERSION",
    "JOB_DONE",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "Job",
    "JobQueue",
    "MAX_ATTEMPTS",
    "ProtocolError",
    "ServeApp",
    "WorkerPool",
    "job_run_config",
    "job_view",
    "make_server",
    "parse_verify_request",
    "run_serve",
    "worker_main",
]

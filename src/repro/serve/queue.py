"""The persistent job queue behind ``repro serve``.

Every job lives twice: in memory (the dispatch deque and the id → job
map the HTTP threads read) and on disk under ``<store>/jobs/`` — one
JSON file per job, rewritten via write-to-temp + ``os.replace`` on
every state transition, mirroring the crash-safety discipline of the
verdict store.  A restarted server :meth:`recovers <JobQueue.recover>`
the directory: ``queued`` jobs re-enter the deque in creation order,
and jobs that were ``running`` when the server died are treated exactly
like a worker crash — requeued if they have a retry left, otherwise
terminated with a clean ``error`` row.  No job is ever silently lost.

Retry policy (the serving contract of docs/SERVER.md): ``attempts`` is
incremented when a worker *claims* the job.  A worker crash with
``attempts < MAX_ATTEMPTS`` requeues; at ``MAX_ATTEMPTS`` the job is
finished with one well-formed ``status: "error"`` row per requested
engine, so a crashing job terminates deterministically instead of
cycling through the worker pool forever.

Thread-safety: one lock around every mutation; the HTTP layer's handler
threads, the worker pool's manager thread and the recovery path all go
through it.  Disk writes happen inside the lock — job files are small
and the queue is not the hot path (verification is).
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections import deque
from dataclasses import asdict, dataclass
from typing import Optional

from ..driver.report import STATUS_ERROR, ProgramResult
from ..driver.runner import expand_backends
from .protocol import JOB_DONE, JOB_QUEUED, JOB_RUNNING

#: First claim + one requeue after a crash; the second crash errors out.
MAX_ATTEMPTS = 2


@dataclass
class Job:
    """One submitted verification request and its progress."""

    id: str
    source: str
    name: str
    kind: str
    backend: str  # the requested selection ("core" | "scv" | "both")
    config: dict  # whitelisted RunConfig overrides (protocol.py)
    state: str = JOB_QUEUED
    created: float = 0.0
    started: Optional[float] = None
    finished: Optional[float] = None
    attempts: int = 0
    worker: Optional[int] = None  # pid of the claiming worker
    warm: bool = False  # answered synchronously from the store
    rows: Optional[list] = None  # repro-bench/v8 rows, once done
    detail: str = ""  # human-readable note (crash/retry history)


def _error_rows(job: Job, detail: str) -> list[dict]:
    """Clean terminal rows for a job whose workers kept dying: one
    well-formed ``error`` row per engine the selection expands to."""
    rows = []
    for engine in expand_backends(job.backend):
        row = ProgramResult(
            name=job.name,
            kind=job.kind,
            status=STATUS_ERROR,
            wall_ms=0.0,
            backend=engine,
            detail=detail,
        )
        rows.append(asdict(row))
    return rows


class JobQueue:
    """Disk-backed FIFO of verification jobs (see the module docstring)."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._pending: deque[str] = deque()

    # -- persistence -----------------------------------------------------

    def _path(self, job_id: str) -> str:
        return os.path.join(self.root, f"{job_id}.json")

    def _save(self, job: Job) -> None:
        path = self._path(job.id)
        tmp = f"{path}.tmp-{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(asdict(job), fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)

    def recover(self) -> dict:
        """Rehydrate the jobs directory after a restart.  Returns a
        summary ``{"recovered", "requeued", "errored"}``."""
        entries = []
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            names = []
        for fn in names:
            if not fn.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.root, fn),
                          encoding="utf-8") as fh:
                    entries.append(Job(**json.load(fh)))
            except (OSError, json.JSONDecodeError, TypeError):
                continue  # a torn job file: dropped, not wedged
        requeued = errored = 0
        with self._lock:
            for job in sorted(entries, key=lambda j: (j.created, j.id)):
                self._jobs[job.id] = job
                if job.state == JOB_QUEUED:
                    self._pending.append(job.id)
                elif job.state == JOB_RUNNING:
                    # The server died mid-job: same policy as a worker
                    # crash (the attempt was already counted at claim).
                    if job.attempts < MAX_ATTEMPTS:
                        job.state = JOB_QUEUED
                        job.worker = None
                        job.detail = (job.detail + " " if job.detail else
                                      "") + "[requeued after server restart]"
                        self._pending.append(job.id)
                        requeued += 1
                    else:
                        self._finish(job, _error_rows(
                            job, "worker crashed and the retry budget is "
                            "spent (server restarted mid-job)",
                        ), detail="errored after server restart")
                        errored += 1
                    self._save(job)
        return {
            "recovered": len(entries),
            "requeued": requeued,
            "errored": errored,
        }

    # -- submission and dispatch -----------------------------------------

    def submit(
        self,
        request: dict,
        *,
        warm_rows: Optional[list] = None,
    ) -> Job:
        """Create a job from a validated request.  With ``warm_rows``
        the job is recorded already ``done`` (the synchronous store-warm
        path); otherwise it enters the pending deque."""
        now = time.time()
        job = Job(
            id=uuid.uuid4().hex[:16],
            source=request["source"],
            name=request["name"],
            kind=request["kind"],
            backend=request["backend"],
            config=dict(request["config"]),
            created=now,
        )
        with self._lock:
            if warm_rows is not None:
                job.state = JOB_DONE
                job.warm = True
                job.started = job.finished = now
                job.rows = warm_rows
            else:
                self._pending.append(job.id)
            self._jobs[job.id] = job
            self._save(job)
        return job

    def claim(self) -> Optional[Job]:
        """Pop the oldest pending job and mark it running (the worker
        pool's dispatch step)."""
        with self._lock:
            while self._pending:
                job = self._jobs.get(self._pending.popleft())
                if job is None or job.state != JOB_QUEUED:
                    continue
                job.state = JOB_RUNNING
                job.started = time.time()
                job.attempts += 1
                self._save(job)
                return job
        return None

    def assign(self, job_id: str, worker_pid: int) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None and job.state == JOB_RUNNING:
                job.worker = worker_pid
                self._save(job)

    # -- completion ------------------------------------------------------

    def _finish(self, job: Job, rows: list, *, detail: str = "") -> None:
        job.state = JOB_DONE
        job.finished = time.time()
        job.rows = rows
        job.worker = None
        if detail:
            job.detail = (job.detail + " " if job.detail else "") + detail

    def complete(self, job_id: str, rows: list) -> None:
        """A worker delivered the job's rows: terminal success."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state == JOB_DONE:
                return  # a late duplicate (worker raced its own kill)
            self._finish(job, rows)
            self._save(job)

    def crash(self, job_id: str, *, detail: str) -> str:
        """The worker holding this job died.  Returns ``"requeued"``
        (one retry available) or ``"errored"`` (terminal error rows) —
        or ``"ignored"`` when the job already completed (the worker was
        killed after delivering its result)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state != JOB_RUNNING:
                return "ignored"
            if job.attempts < MAX_ATTEMPTS:
                job.state = JOB_QUEUED
                job.worker = None
                job.detail = (job.detail + " " if job.detail else "") + \
                    f"[retrying: {detail}]"
                self._pending.append(job.id)
                self._save(job)
                return "requeued"
            self._finish(
                job,
                _error_rows(
                    job,
                    f"worker crashed twice ({detail}); retry budget spent",
                ),
                detail=f"[errored: {detail}]",
            )
            self._save(job)
            return "errored"

    # -- inspection ------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(),
                          key=lambda j: (j.created, j.id))

    def depth(self) -> int:
        with self._lock:
            return sum(
                1 for j in self._jobs.values() if j.state == JOB_QUEUED
            )

    def counts(self) -> dict:
        with self._lock:
            out = {state: 0 for state in (JOB_QUEUED, JOB_RUNNING, JOB_DONE)}
            warm = 0
            for j in self._jobs.values():
                out[j.state] = out.get(j.state, 0) + 1
                warm += bool(j.warm)
            out["warm"] = warm
            return out

"""The process-based worker pool of ``repro serve``.

Jobs run in worker *processes*, not threads, for one load-bearing
reason: the per-program wall-clock budget is enforced with ``SIGALRM``
(:mod:`repro.driver.backends`), which only arms in a process's main
thread.  A thread pool would silently run every job unbounded (the
exact failure mode the ``deadline_enforced`` row flag was added to
expose); a process pool keeps the batch runner's deadline semantics
bit-for-bit.

Each worker owns a private task queue (so the parent always knows which
job a dead worker was holding — crash attribution needs no guessing)
and reports on one shared result queue.  A single manager thread runs
the whole control loop: collect results, detect dead workers (requeue
the job once, then let the queue emit clean ``error`` rows), enforce a
parent-side deadline backstop (``SIGKILL`` a worker stuck past its
job's budget — the in-worker ``SIGALRM`` is the primary mechanism, the
backstop catches a wedged worker that lost its alarm), replace dead
workers, and dispatch pending jobs to idle ones.

Solver-store flushing (the crash-loss fix this PR ships): a worker
flushes every live :class:`~repro.store.solver.SolverStore` buffer
*after each job* and again in its ``finally`` teardown, and installs a
``SIGTERM`` handler that flushes before exiting — so entries solved by
a worker that is drained, terminated, or killed between jobs always
reach the shard directory.  Only a hard ``SIGKILL`` mid-verification
can drop (that verification's) buffered entries, and those re-solve on
retry.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as stdlib_queue
import signal
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Optional

from ..driver.backends import RunConfig
from ..driver.runner import expand_backends, run_job
from ..driver.report import STATUS_ERROR, ProgramResult
from ..store.solver import flush_all_stores
from .queue import JobQueue

#: Seconds of slack on top of a job's own wall-clock budget before the
#: parent-side backstop kills the worker (result assembly, synthesis
#: and store writes run outside the SIGALRM window and need headroom).
DEADLINE_GRACE_S = 15.0

#: Manager poll interval (result-queue wait doubles as the tick).
_POLL_S = 0.1


def job_run_config(
    base_fields: dict, overrides: dict, store_root: str
) -> dict:
    """The effective ``RunConfig`` fields for one job: the server's
    defaults, the request's whitelisted overrides, and the forced
    orchestration knobs.  Used identically by the warm-path probe and
    the worker, so a warm replay and a recompute share one config
    digest — the warm-path guarantee depends on this."""
    return {
        **base_fields,
        **overrides,
        # The serve pool is already one process per job; in-job frontier
        # shards would fork from a daemonic worker, which cannot.  Same
        # demotion (identical output by construction) as the batch pool.
        "jobs": 1,
        "shards": 1,
        "client_of": None,
        "store_dir": store_root,
    }


def _flush_and_exit(signum, frame):
    # SIGTERM (drain escalation, parent teardown): publish buffered
    # solver entries, then die immediately.  ``os._exit`` on purpose —
    # the process may be mid-job and its Python state unreliable; the
    # parent treats the exit as a crash and handles the job.
    flush_all_stores()
    os._exit(0)


def worker_main(worker_id: int, task_q, result_q) -> None:
    """One worker process: loop over tasks until the ``None`` sentinel.

    Every task runs in this process's *main thread*, so the SIGALRM
    deadline machinery works exactly as in the batch runner.  A task
    that raises anything still produces well-formed ``error`` rows —
    workers only die by signal (or interpreter catastrophe), which the
    parent's crash handling covers."""
    signal.signal(signal.SIGTERM, _flush_and_exit)
    try:
        while True:
            task = task_q.get()
            if task is None:
                break
            job_id = task["job"]
            try:
                rows = [
                    asdict(r) for r in run_job(
                        task["source"],
                        name=task["name"],
                        kind=task["kind"],
                        config=RunConfig(**task["config"]),
                        backend=task["backend"],
                    )
                ]
            except BaseException as exc:  # noqa: BLE001 — must answer
                rows = [
                    asdict(ProgramResult(
                        name=task["name"],
                        kind=task["kind"],
                        status=STATUS_ERROR,
                        wall_ms=0.0,
                        backend=engine,
                        detail=f"worker exception: "
                               f"{type(exc).__name__}: {exc}",
                    ))
                    for engine in expand_backends(task["backend"])
                ]
            # Server-job-completion flush: the job's solver entries are
            # on disk before the result is even reported, so a worker
            # killed *between* jobs loses nothing.
            flush_all_stores()
            result_q.put((worker_id, job_id, rows))
    finally:
        flush_all_stores()


@dataclass
class _Worker:
    proc: mp.process.BaseProcess
    task_q: object
    job_id: Optional[str] = None
    deadline: Optional[float] = None
    sentineled: bool = False
    jobs_done: int = 0
    started: float = field(default_factory=time.time)


class WorkerPool:
    """A fixed-size pool of worker processes fed from a
    :class:`~repro.serve.queue.JobQueue` (see the module docstring)."""

    def __init__(
        self,
        job_queue: JobQueue,
        *,
        size: int,
        base_config: dict,
        store_root: str,
        grace_s: float = DEADLINE_GRACE_S,
    ) -> None:
        self.jobs = job_queue
        self.size = max(1, size)
        self.base_config = dict(base_config)
        self.store_root = store_root
        self.grace_s = grace_s
        self._ctx = mp.get_context()
        self._result_q = self._ctx.Queue()
        self._workers: dict[int, _Worker] = {}
        self._next_id = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._manager: Optional[threading.Thread] = None
        self.jobs_completed = 0
        self.jobs_requeued = 0
        self.jobs_errored = 0
        self.workers_replaced = 0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        with self._lock:
            for _ in range(self.size):
                self._spawn_locked()
        self._manager = threading.Thread(
            target=self._manage, name="repro-serve-manager", daemon=True
        )
        self._manager.start()

    def _spawn_locked(self) -> None:
        wid = self._next_id
        self._next_id += 1
        task_q = self._ctx.SimpleQueue()
        proc = self._ctx.Process(
            target=worker_main,
            args=(wid, task_q, self._result_q),
            name=f"repro-serve-worker-{wid}",
            daemon=True,
        )
        proc.start()
        self._workers[wid] = _Worker(proc=proc, task_q=task_q)

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Graceful shutdown: finish in-flight jobs (queued ones stay
        persisted for the next server), then stop every worker.  After
        ``timeout_s`` stragglers are escalated SIGTERM → SIGKILL; the
        SIGTERM flush handler still publishes their solver buffers.
        Returns True when everything exited within the budget."""
        self._stop.set()
        deadline = time.time() + timeout_s
        if self._manager is not None:
            self._manager.join(max(0.0, deadline - time.time()))
        clean = True
        with self._lock:
            workers = list(self._workers.values())
        for w in workers:
            w.proc.join(max(0.1, deadline - time.time()))
            if w.proc.is_alive():
                clean = False
                w.proc.terminate()  # SIGTERM: flush handler runs
                w.proc.join(2.0)
                if w.proc.is_alive():
                    w.proc.kill()
                    w.proc.join(1.0)
            if w.job_id is not None:
                self.jobs.crash(
                    w.job_id, detail="server shut down while running"
                )
        return clean

    # -- the manager loop ------------------------------------------------

    def _manage(self) -> None:
        while True:
            try:
                msg = self._result_q.get(timeout=_POLL_S)
            except stdlib_queue.Empty:
                msg = None
            if msg is not None:
                self._on_result(*msg)
                # Opportunistically drain the rest without waiting.
                while True:
                    try:
                        self._on_result(*self._result_q.get_nowait())
                    except stdlib_queue.Empty:
                        break
            self._reap_and_replace()
            self._enforce_deadlines()
            if self._stop.is_set():
                if self._shutdown_tick():
                    return
            else:
                self._dispatch()

    def _on_result(self, wid: int, job_id: str, rows: list) -> None:
        self.jobs.complete(job_id, rows)
        self.jobs_completed += 1
        with self._lock:
            w = self._workers.get(wid)
            if w is not None and w.job_id == job_id:
                w.job_id = None
                w.deadline = None
                w.jobs_done += 1

    def _reap_and_replace(self) -> None:
        with self._lock:
            dead = [
                (wid, w) for wid, w in self._workers.items()
                if not w.proc.is_alive()
            ]
            for wid, w in dead:
                del self._workers[wid]
            respawn = 0 if self._stop.is_set() else len(dead)
        for _wid, w in dead:
            if w.job_id is not None:
                outcome = self.jobs.crash(
                    w.job_id,
                    detail=f"worker pid {w.proc.pid} exited "
                           f"with code {w.proc.exitcode}",
                )
                if outcome == "requeued":
                    self.jobs_requeued += 1
                elif outcome == "errored":
                    self.jobs_errored += 1
        if respawn:
            with self._lock:
                for _ in range(respawn):
                    self._spawn_locked()
                    self.workers_replaced += 1

    def _enforce_deadlines(self) -> None:
        now = time.time()
        with self._lock:
            stuck = [
                w for w in self._workers.values()
                if w.job_id is not None and w.deadline is not None
                and now > w.deadline
            ]
        for w in stuck:
            # The worker's own SIGALRM should have fired long ago; a
            # wedged worker is indistinguishable from a hung one, so
            # treat it as a crash (SIGKILL → reap → requeue-or-error).
            w.proc.kill()

    def _dispatch(self) -> None:
        while True:
            with self._lock:
                idle = next(
                    (w for w in self._workers.values()
                     if w.job_id is None and w.proc.is_alive()),
                    None,
                )
            if idle is None:
                return
            job = self.jobs.claim()
            if job is None:
                return
            cfg = job_run_config(self.base_config, job.config,
                                 self.store_root)
            timeout_s = float(cfg.get("timeout_s") or 0.0)
            n_engines = len(expand_backends(job.backend))
            idle.job_id = job.id
            idle.deadline = (
                time.time() + timeout_s * n_engines + self.grace_s
                if timeout_s > 0 else None
            )
            self.jobs.assign(job.id, idle.proc.pid or -1)
            idle.task_q.put({
                "job": job.id,
                "source": job.source,
                "name": job.name,
                "kind": job.kind,
                "backend": job.backend,
                "config": cfg,
            })

    def _shutdown_tick(self) -> bool:
        """One drain step: sentinel idle workers, and report whether
        every worker has exited."""
        with self._lock:
            for w in self._workers.values():
                if w.job_id is None and not w.sentineled:
                    w.task_q.put(None)
                    w.sentineled = True
            return all(not w.proc.is_alive()
                       for w in self._workers.values())

    # -- inspection ------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            workers = [
                {
                    "pid": w.proc.pid,
                    "alive": w.proc.is_alive(),
                    "busy": w.job_id is not None,
                    "job": w.job_id,
                    "jobs_done": w.jobs_done,
                }
                for w in self._workers.values()
            ]
        return {
            "size": self.size,
            "alive": sum(1 for w in workers if w["alive"]),
            "busy": sum(1 for w in workers if w["busy"]),
            "workers": workers,
            "jobs_completed": self.jobs_completed,
            "jobs_requeued": self.jobs_requeued,
            "jobs_errored": self.jobs_errored,
            "workers_replaced": self.workers_replaced,
        }

    def worker_pids(self) -> list[int]:
        with self._lock:
            return [
                w.proc.pid for w in self._workers.values()
                if w.proc.pid is not None and w.proc.is_alive()
            ]

    def busy_pids(self) -> list[int]:
        with self._lock:
            return [
                w.proc.pid for w in self._workers.values()
                if w.job_id is not None and w.proc.pid is not None
            ]

"""The wire protocol of ``repro serve``: request validation, job views.

One JSON dialect, versioned as ``repro-serve/v1``, shared by the HTTP
layer (:mod:`repro.serve.app`), the client tooling
(``tools/serve_smoke.py``) and the tests.  Result rows inside job views
are the batch runner's ``repro-bench/v8`` rows verbatim
(:class:`repro.driver.report.ProgramResult` as a dict), so a report
assembled from served jobs diffs cleanly against a batch report with
``tools/diff_reports.py``.

A *job* is one submitted program against one backend selection.  Its
lifecycle (see docs/SERVER.md):

``queued`` → ``running`` → ``done``

with one detour: a job whose worker process dies mid-run is requeued
exactly once (``queued`` again, ``attempts`` already counted); a second
crash terminates the job as ``done`` with a well-formed ``error`` row
per requested engine — a job never hangs and never vanishes.
"""

from __future__ import annotations

from typing import Optional

#: Protocol version, echoed by ``/v1/healthz`` and every job view.
API_VERSION = "repro-serve/v1"

# Job lifecycle states.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"

JOB_STATES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE)

#: Request ``config`` keys a client may override, with their expected
#: types — exactly the semantic knobs of ``driver.backends.RunConfig``
#: (the store key's config digest is computed over these, so a request
#: that overrides none of them shares warm entries with the batch
#: runner's defaults).  Orchestration knobs (``jobs``, ``shards``,
#: ``store_dir``, ``client_of``) are the server's business, not the
#: client's, and are rejected.
REQUEST_CONFIG_FIELDS: dict[str, type] = {
    "max_states": int,
    "fuel": int,
    "timeout_s": (int, float),
    "max_cex_attempts": int,
    "mode": str,
    "strategy": str,
    "memo": bool,
    "incremental": bool,
    "compile": bool,
}

_BACKEND_CHOICES = ("core", "scv", "both")

#: Submitted source text above this size is rejected outright (a
#: denial-of-service guard, not a semantic limit).
MAX_SOURCE_BYTES = 1 << 20


class ProtocolError(Exception):
    """A malformed request; the message is safe to return to the
    client (HTTP 400)."""


def parse_verify_request(body) -> dict:
    """Validate a ``POST /v1/verify`` body into a normalized request.

    Returns ``{"source", "name", "kind", "backend", "config"}`` where
    ``config`` holds only whitelisted ``RunConfig`` overrides.  Raises
    :class:`ProtocolError` on anything malformed."""
    if not isinstance(body, dict):
        raise ProtocolError("request body must be a JSON object")
    source = body.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ProtocolError("'source' must be a non-empty string")
    if len(source.encode("utf-8")) > MAX_SOURCE_BYTES:
        raise ProtocolError(
            f"'source' exceeds {MAX_SOURCE_BYTES} bytes"
        )
    name = body.get("name", "<request>")
    if not isinstance(name, str) or not name:
        raise ProtocolError("'name' must be a non-empty string")
    kind = body.get("kind", "?")
    if kind not in ("safe", "buggy", "?"):
        raise ProtocolError("'kind' must be one of: safe, buggy, ?")
    backend = body.get("backend", "core")
    if backend not in _BACKEND_CHOICES:
        raise ProtocolError(
            f"'backend' must be one of: {', '.join(_BACKEND_CHOICES)}"
        )
    config = body.get("config", {})
    if not isinstance(config, dict):
        raise ProtocolError("'config' must be a JSON object")
    overrides = {}
    for key, value in config.items():
        want = REQUEST_CONFIG_FIELDS.get(key)
        if want is None:
            raise ProtocolError(
                f"unknown config key {key!r} (allowed: "
                f"{', '.join(sorted(REQUEST_CONFIG_FIELDS))})"
            )
        # bool is an int subclass: reject True where an int is expected.
        if isinstance(value, bool) and want is not bool:
            raise ProtocolError(f"config key {key!r} must be {want.__name__}")
        if not isinstance(value, want):
            wanted = (
                want.__name__ if isinstance(want, type)
                else "/".join(t.__name__ for t in want)
            )
            raise ProtocolError(f"config key {key!r} must be {wanted}")
        overrides[key] = value
    unknown = sorted(
        k for k in body
        if k not in ("source", "name", "kind", "backend", "config")
    )
    if unknown:
        raise ProtocolError(f"unknown request key(s): {', '.join(unknown)}")
    return {
        "source": source,
        "name": name,
        "kind": kind,
        "backend": backend,
        "config": overrides,
    }


def job_view(job, *, include_rows: bool = True) -> dict:
    """The public JSON shape of a job (``GET /v1/jobs/<id>``).

    ``rows`` — present once the job is done — are ``repro-bench/v8``
    result rows, one per engine the backend selection expanded to."""
    view = {
        "api": API_VERSION,
        "id": job.id,
        "state": job.state,
        "name": job.name,
        "kind": job.kind,
        "backend": job.backend,
        "config": dict(job.config),
        "created": job.created,
        "started": job.started,
        "finished": job.finished,
        "attempts": job.attempts,
        "warm": job.warm,
        "source_bytes": len(job.source.encode("utf-8")),
        "detail": job.detail,
    }
    if include_rows:
        view["rows"] = job.rows if job.state == JOB_DONE else None
    return view


def job_summary(job) -> dict:
    """The abbreviated shape used by the job listing."""
    view = job_view(job, include_rows=False)
    del view["api"], view["config"]
    return view


def verdicts_of(rows: Optional[list]) -> list[str]:
    """The per-engine statuses of a finished job's rows."""
    return [r.get("status", "?") for r in rows or []]
